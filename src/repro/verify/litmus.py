"""Declarative litmus-test runner for the coherence protocols.

A litmus test is a tiny multi-core program — a few loads, stores, fences,
and RMWs per core on a couple of shared variables — together with the set
of outcomes the memory model forbids. Cores here issue their operations
*sequentially* (each op waits for the previous one to complete), so the
machine must be sequentially consistent for these programs: every classic
forbidden outcome (SB, MP, CoRR, IRIW, 2+2W) is genuinely forbidden, and
any observation of one is a protocol bug, not a relaxed-memory-model
artifact.

Interleaving variety comes from three deterministic sources:

* a per-op issue jitter drawn from a schedule RNG (different schedules
  explore different racings of the same program),
* the machine seed (backoff draws, trace-independent timing),
* *threshold variants*: extra observer cores repeatedly load the test
  variables so the sharer count crosses ``MaxWiredSharers`` mid-test and
  the racing stores ride the S->W transition / wireless-update path
  (paper Sections III-B/III-C).

Everything is pure simulation — no wall-clock, no global state — so a
(test, config, seed) triple always reproduces the same outcome histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config.system import SystemConfig
from repro.engine.rng import DeterministicRng
from repro.system import Manycore

#: First line index used for litmus variables; the stride is odd so the
#: variables spread across homes and mesh quadrants.
_BASE_LINE = 0x3000
_LINE_STRIDE = 17


# --------------------------------------------------------------------- ops


@dataclass(frozen=True)
class LitmusOp:
    """One operation of a per-core litmus program."""

    kind: str  #: "load" | "store" | "rmw" | "fence" | "delay"
    var: Optional[str] = None
    value: int = 0
    cycles: int = 0

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "var": self.var,
            "value": self.value,
            "cycles": self.cycles,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "LitmusOp":
        return cls(
            kind=payload["kind"],
            var=payload.get("var"),
            value=payload.get("value", 0),
            cycles=payload.get("cycles", 0),
        )


def ld(var: str) -> LitmusOp:
    """Load ``var``; the value becomes the next observation register."""
    return LitmusOp("load", var)


def st(var: str, value: int) -> LitmusOp:
    """Store ``value`` to ``var``."""
    return LitmusOp("store", var, value)


def rmw(var: str) -> LitmusOp:
    """Atomic fetch-and-increment; the old value becomes an observation."""
    return LitmusOp("rmw", var)


def fence() -> LitmusOp:
    """Ordering fence. Sequential issuance already orders each core's ops,
    so this is a structural no-op kept for program readability and for
    future relaxed-issue drivers."""
    return LitmusOp("fence")


def delay(cycles: int) -> LitmusOp:
    """Stall the issuing core for ``cycles`` before the next op."""
    return LitmusOp("delay", cycles=cycles)


# -------------------------------------------------------------------- test


@dataclass
class LitmusTest:
    """A named multi-core program with its forbidden/expected outcomes.

    Attributes
    ----------
    programs:
        One op list per participating core (core ``i`` runs
        ``programs[i]``).
    forbidden:
        Patterns over the flattened observation vector (loads and RMW old
        values in (core, program-order) sequence): each pattern maps
        register index -> value, and matches when every indexed register
        holds that value. Any match is a violation.
    allowed:
        Optional whitelist of *full* observation vectors; when set, any
        observation outside it is a violation (used by shapes whose SC
        outcome set is small enough to enumerate).
    final_forbidden:
        Patterns over the final memory values of the variables (sorted by
        name); matching any pattern is a violation (2+2W-style shapes).
    final:
        Exact required final values per variable (atomicity shapes).
    rmw_distinct:
        When True, all RMW observations across all cores must be distinct
        (fetch-and-increment must never hand out the same old value twice).
    """

    name: str
    programs: List[List[LitmusOp]]
    forbidden: List[Dict[int, int]] = field(default_factory=list)
    allowed: Optional[Set[Tuple[int, ...]]] = None
    final_forbidden: List[Dict[str, int]] = field(default_factory=list)
    final: Dict[str, int] = field(default_factory=dict)
    rmw_distinct: bool = False
    description: str = ""

    @property
    def variables(self) -> List[str]:
        names: Set[str] = set()
        for program in self.programs:
            for op in program:
                if op.var is not None:
                    names.add(op.var)
        return sorted(names)

    @property
    def num_cores(self) -> int:
        return len(self.programs)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "programs": [[op.to_dict() for op in p] for p in self.programs],
            "forbidden": [
                {str(k): v for k, v in pat.items()} for pat in self.forbidden
            ],
            "allowed": sorted(list(v) for v in self.allowed)
            if self.allowed is not None
            else None,
            "final_forbidden": self.final_forbidden,
            "final": self.final,
            "rmw_distinct": self.rmw_distinct,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "LitmusTest":
        allowed = payload.get("allowed")
        return cls(
            name=payload["name"],
            programs=[
                [LitmusOp.from_dict(op) for op in program]
                for program in payload["programs"]
            ],
            forbidden=[
                {int(k): v for k, v in pat.items()}
                for pat in payload.get("forbidden", [])
            ],
            allowed={tuple(v) for v in allowed} if allowed is not None else None,
            final_forbidden=payload.get("final_forbidden", []),
            final=payload.get("final", {}),
            rmw_distinct=payload.get("rmw_distinct", False),
            description=payload.get("description", ""),
        )


def variable_addresses(variables: Sequence[str], line_bytes: int) -> Dict[str, int]:
    """Map variable names to byte addresses on distinct, home-spread lines."""
    return {
        name: (_BASE_LINE + index * _LINE_STRIDE) * line_bytes
        for index, name in enumerate(variables)
    }


# ------------------------------------------------------------------ driver


class _ProgramDriver:
    """Issues one core's litmus program sequentially with issue jitter."""

    def __init__(
        self,
        machine: Manycore,
        node: int,
        ops: List[LitmusOp],
        addresses: Dict[str, int],
        jitter_rng: DeterministicRng,
        jitter_window: int,
        on_finish,
    ) -> None:
        self.machine = machine
        self.node = node
        self.cache = machine.caches[node]
        self.ops = ops
        self.addresses = addresses
        self.jitter_rng = jitter_rng
        self.jitter_window = jitter_window
        self.on_finish = on_finish
        self.observations: List[int] = []
        self.rmw_observations: List[int] = []
        self.finished = False
        self._index = 0

    def start(self) -> None:
        self._issue_next()

    def _issue_next(self) -> None:
        if self._index >= len(self.ops):
            self.finished = True
            self.on_finish(self)
            return
        op = self.ops[self._index]
        self._index += 1
        gap = 0
        if self.jitter_window > 0:
            gap = self.jitter_rng.randint(0, self.jitter_window)
        if op.kind == "delay":
            gap += op.cycles
            self.machine.sim.schedule(max(1, gap), self._issue_next)
            return
        if op.kind == "fence":
            # Sequential issuance already drains the core's previous op.
            self.machine.sim.schedule(max(1, gap), self._issue_next)
            return
        self.machine.sim.schedule(max(1, gap), lambda: self._dispatch(op))

    def _dispatch(self, op: LitmusOp) -> None:
        address = self.addresses[op.var]
        if op.kind == "load":
            self.cache.load(address, self._on_value)
        elif op.kind == "store":
            self.cache.store(address, op.value, self._issue_next)
        elif op.kind == "rmw":
            self.cache.rmw(address, self._on_rmw)
        else:  # pragma: no cover - constructors prevent unknown kinds
            raise ValueError(f"unknown litmus op kind {op.kind!r}")

    def _on_value(self, value: int) -> None:
        self.observations.append(value)
        self._issue_next()

    def _on_rmw(self, old: int) -> None:
        self.observations.append(old)
        self.rmw_observations.append(old)
        self._issue_next()


# ------------------------------------------------------------------ result


@dataclass
class LitmusResult:
    """Outcome histogram and violations of one (test, config) pair."""

    test: str
    config_label: str
    schedules: int
    outcomes: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    #: Total S->W transitions across all schedules (threshold variants
    #: assert this is non-zero, i.e. the W path really was exercised).
    s_to_w_transitions: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "ok" if self.ok else f"FAIL ({len(self.violations)})"
        distinct = len(self.outcomes)
        return (
            f"{self.test:<24} {self.config_label:<20} "
            f"{self.schedules:>3} schedules  {distinct:>3} outcomes  {status}"
        )


def _read_final_values(
    machine: Manycore,
    addresses: Dict[str, int],
    max_events: int,
) -> Dict[str, int]:
    """Read every variable's final value *through the protocol* (core 0).

    Running real loads after the programs drain doubles as a liveness probe
    for the post-run machine and avoids a parallel inspection code path
    that could disagree with what a core would actually observe.
    """
    values: Dict[str, int] = {}
    state = {"pending": len(addresses)}
    for name in sorted(addresses):

        def record(value: int, key: str = name) -> None:
            values[key] = value
            state["pending"] -= 1

        machine.caches[0].load(addresses[name], record)
    machine.run(max_events=max_events)
    if state["pending"]:
        raise AssertionError("final-value loads did not complete")
    return values


def run_litmus(
    test: LitmusTest,
    config: SystemConfig,
    schedules: int = 16,
    seed: int = 0,
    jitter_window: int = 40,
    config_label: Optional[str] = None,
    max_events_per_schedule: int = 2_000_000,
) -> LitmusResult:
    """Run ``test`` on fresh machines across ``schedules`` issue schedules.

    Every schedule builds a brand-new :class:`Manycore` (same ``config``
    but a distinct machine seed derived from ``seed``) and a distinct
    jitter stream, runs the programs to completion, applies the test's
    outcome predicates, and — cheap but strong — the end-of-run quiescent
    coherence check.
    """
    if test.num_cores > config.num_cores:
        raise ValueError(
            f"litmus test {test.name} needs {test.num_cores} cores, "
            f"config has {config.num_cores}"
        )
    label = config_label or config.protocol
    result = LitmusResult(test=test.name, config_label=label, schedules=schedules)
    root = DeterministicRng(seed).split(f"litmus-{test.name}-{label}")
    addresses_by_line = variable_addresses(test.variables, config.l1.line_bytes)

    for schedule in range(schedules):
        machine_seed = root.split(f"machine-{schedule}").randint(0, 2**31 - 1)
        machine = Manycore(replace(config, seed=machine_seed))
        jitter_root = root.split(f"jitter-{schedule}")
        finished = {"count": 0}

        def on_finish(_driver: _ProgramDriver) -> None:
            finished["count"] += 1

        drivers = [
            _ProgramDriver(
                machine,
                node,
                ops,
                addresses_by_line,
                jitter_root.split(f"core-{node}"),
                jitter_window,
                on_finish,
            )
            for node, ops in enumerate(test.programs)
        ]
        for driver in drivers:
            driver.start()
        machine.run(max_events=max_events_per_schedule)

        if finished["count"] != test.num_cores:
            stuck = [d.node for d in drivers if not d.finished]
            result.violations.append(
                f"schedule {schedule}: cores {stuck} did not finish "
                f"(deadlock at cycle {machine.sim.now})"
            )
            continue

        observation = tuple(
            value for driver in drivers for value in driver.observations
        )
        result.outcomes[observation] = result.outcomes.get(observation, 0) + 1

        for pattern in test.forbidden:
            if all(observation[reg] == want for reg, want in pattern.items()):
                result.violations.append(
                    f"schedule {schedule}: forbidden outcome {observation} "
                    f"matches {pattern}"
                )
        if test.allowed is not None and observation not in test.allowed:
            result.violations.append(
                f"schedule {schedule}: outcome {observation} not in the "
                f"allowed set"
            )
        if test.rmw_distinct:
            olds = [v for d in drivers for v in d.rmw_observations]
            if len(olds) != len(set(olds)):
                result.violations.append(
                    f"schedule {schedule}: duplicate RMW old values {sorted(olds)}"
                )

        if test.final or test.final_forbidden:
            finals = _read_final_values(
                machine, addresses_by_line, max_events_per_schedule
            )
            for name, want in test.final.items():
                if finals.get(name) != want:
                    result.violations.append(
                        f"schedule {schedule}: final {name}={finals.get(name)} "
                        f"!= required {want}"
                    )
            for pattern in test.final_forbidden:
                if all(finals.get(n) == v for n, v in pattern.items()):
                    result.violations.append(
                        f"schedule {schedule}: forbidden final state {finals} "
                        f"matches {pattern}"
                    )

        try:
            machine.check_coherence()
        except Exception as exc:
            result.violations.append(f"schedule {schedule}: {exc}")
        result.s_to_w_transitions += machine.stats.get_counter("dir.total.s_to_w")
    return result


# ----------------------------------------------------------------- library


def _with_observers(
    base: LitmusTest, name: str, observers: int, reads_per_observer: int = 6
) -> LitmusTest:
    """Append cores that repeatedly load every variable of ``base``.

    With enough observers the sharer count crosses ``MaxWiredSharers``
    mid-test, so the racing stores exercise the S->W transition, wireless
    updates, and the W->S fallback — the paper's hard windows. Observer
    loads join the observation vector *after* the base cores', so the base
    test's forbidden patterns (indexed from 0) are untouched.
    """
    variables = base.variables
    program: List[LitmusOp] = []
    for repeat in range(reads_per_observer):
        for var in variables:
            program.append(ld(var))
        program.append(delay(3 + repeat))
    programs = [list(p) for p in base.programs] + [
        list(program) for _ in range(observers)
    ]
    return LitmusTest(
        name=name,
        programs=programs,
        forbidden=[dict(p) for p in base.forbidden],
        allowed=None,  # observer loads make the full vector unbounded
        final_forbidden=[dict(p) for p in base.final_forbidden],
        final=dict(base.final),
        rmw_distinct=base.rmw_distinct,
        description=(
            f"{base.description} + {observers} observer cores crossing the "
            f"MaxWiredSharers threshold mid-test"
        ),
    )


def litmus_suite(threshold_variants: bool = True) -> List[LitmusTest]:
    """The library of litmus shapes (classic + WiDir threshold variants)."""
    sb = LitmusTest(
        name="SB",
        programs=[[st("x", 1), ld("y")], [st("y", 1), ld("x")]],
        forbidden=[{0: 0, 1: 0}],
        allowed={(0, 1), (1, 0), (1, 1)},
        description="store buffering: both loads reading 0 is non-SC",
    )
    mp = LitmusTest(
        name="MP",
        programs=[[st("x", 1), st("y", 1)], [ld("y"), ld("x")]],
        forbidden=[{0: 1, 1: 0}],
        allowed={(0, 0), (0, 1), (1, 1)},
        description="message passing: seeing the flag but stale data is non-SC",
    )
    corr = LitmusTest(
        name="CoRR",
        programs=[[st("x", 1)], [ld("x"), ld("x")]],
        forbidden=[{0: 1, 1: 0}],
        allowed={(0, 0), (0, 1), (1, 1)},
        description="coherent read-read: a load may never travel back in time",
    )
    iriw = LitmusTest(
        name="IRIW",
        programs=[
            [st("x", 1)],
            [st("y", 1)],
            [ld("x"), ld("y")],
            [ld("y"), ld("x")],
        ],
        forbidden=[{0: 1, 1: 0, 2: 1, 3: 0}],
        description="independent reads of independent writes must agree on "
        "the store order",
    )
    w22 = LitmusTest(
        name="2+2W",
        programs=[[st("x", 1), st("y", 2)], [st("y", 1), st("x", 2)]],
        final_forbidden=[{"x": 1, "y": 1}],
        description="2+2W: both first stores winning requires a cycle",
    )
    atom = LitmusTest(
        name="ATOM",
        programs=[[rmw("x") for _ in range(8)] for _ in range(4)],
        final={"x": 32},
        rmw_distinct=True,
        description="4 cores x 8 fetch-and-increments: final value exactly "
        "32, no duplicate old values",
    )
    suite = [sb, mp, corr, iriw, w22, atom]
    if threshold_variants:
        suite.extend(
            [
                _with_observers(sb, "SB+threshold", observers=4),
                _with_observers(mp, "MP+threshold", observers=4),
                _with_observers(corr, "CoRR+threshold", observers=4),
            ]
        )
    return suite


def suite_configs(num_cores: int = 8) -> List[Tuple[str, SystemConfig]]:
    """The (label, config) matrix litmus campaigns run against.

    Every registered protocol backend appears at least once; threshold
    protocols get an extra tight-threshold variant that forces their
    many-sharer mode on the handful of cores a litmus test touches.
    """
    baseline = SystemConfig(num_cores=num_cores, protocol="baseline")
    widir = SystemConfig(num_cores=num_cores, protocol="widir")
    tight = replace(
        widir, directory=replace(widir.directory, num_pointers=1, max_wired_sharers=1)
    )
    phase = SystemConfig(num_cores=num_cores, protocol="phase_priority")
    hybrid = SystemConfig(num_cores=num_cores, protocol="hybrid_update")
    # Hybrid mode entry needs a *precise* sharer vector (imprecise entries
    # fall back to invalidation), so the tight variant widens the pointer
    # array to the core count while dropping the threshold to 1.
    hybrid_tight = replace(
        hybrid,
        directory=replace(
            hybrid.directory, num_pointers=num_cores, max_wired_sharers=1
        ),
    )
    from repro.wireless.mac import DEFAULT_MAC, mac_names

    matrix = [
        ("baseline", baseline),
        ("widir", widir),
        ("widir-mws1", tight),
        ("phase_priority", phase),
        ("hybrid_update", hybrid),
        ("hybrid_update-mws1", hybrid_tight),
    ]
    # Every non-default MAC gets a row on the wireless protocol, both with
    # the stock threshold and the tight one that maximizes wireless traffic.
    for mac in mac_names():
        if mac == DEFAULT_MAC:
            continue
        matrix.append((f"widir-{mac}", replace(widir, mac=mac)))
        matrix.append((f"widir-mws1-{mac}", replace(tight, mac=mac)))
    # Channel errors exercise the retransmit paths under every litmus shape.
    errors = replace(
        widir,
        channel_errors=replace(
            widir.channel_errors,
            frame_corruption_prob=0.1,
            missed_tone_prob=0.1,
        ),
    )
    matrix.append(("widir-chanerr", errors))
    return matrix


def run_suite(
    num_cores: int = 8,
    schedules: int = 12,
    seed: int = 0,
    online_interval: int = 0,
) -> List[LitmusResult]:
    """Run the full litmus library against the config matrix."""
    results: List[LitmusResult] = []
    for label, config in suite_configs(num_cores):
        if online_interval:
            config = replace(config, check_interval=online_interval)
        for test in litmus_suite():
            results.append(
                run_litmus(
                    test,
                    config,
                    schedules=schedules,
                    seed=seed,
                    config_label=label,
                )
            )
    return results
