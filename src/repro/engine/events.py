"""Cycle-resolution event queue.

Heap entries are ``(time, seq, event)`` triples. The monotonically
increasing sequence number makes ordering *total* and therefore
deterministic: two events scheduled for the same cycle always fire in the
order they were scheduled, regardless of heap internals. Keeping plain
``(int, int, ...)`` tuples at the front of each entry means every heap
comparison is resolved in C by tuple ordering — profiles of full runs
showed ``Event.__lt__`` as the single hottest function when the heap held
rich objects directly (the ``seq`` tie-break guarantees the third element
is never compared).
"""

from __future__ import annotations

import heapq
from heapq import heappush as _heappush
from typing import Callable, List, Optional, Tuple

from repro.engine.errors import SimulationError


class Event:
    """A scheduled callback; supports O(1) cancellation via a tombstone flag."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; it is skipped (not executed) when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, time: int, callback: Callable[[], None]) -> Event:
        """Enqueue ``callback`` to run at absolute cycle ``time``.

        ``Event.__init__`` is bypassed (``__new__`` + direct slot stores):
        this is the most-called allocation site in the simulator and the
        constructor frame showed up in profiles on its own.
        """
        seq = self._seq
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.cancelled = False
        self._seq = seq + 1
        self._live += 1
        _heappush(self._heap, (time, seq, event))
        return event

    def peek_time(self) -> Optional[int]:
        """Return the cycle of the next live event, or None if empty."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the next live event.

        Tombstones are skipped *inside* the pop loop rather than by a
        separate ``_drop_dead`` pre-scan. This guarantees a callback that
        cancels the head between ``peek_time()`` and ``pop()`` in the same
        cycle can never be handed a dead event, and avoids walking the same
        tombstone run twice when the two calls are made back-to-back.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            self._live -= 1
            if not event.cancelled:
                return event
        raise SimulationError("pop() on an empty event queue")

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._live -= 1
