"""Discrete-event simulation kernel.

The engine is deliberately small: a cycle-resolution event queue
(:class:`~repro.engine.events.EventQueue`), a simulator facade that owns the
clock (:class:`~repro.engine.simulator.Simulator`), and a deterministic
splittable RNG (:class:`~repro.engine.rng.DeterministicRng`). Every other
subsystem (caches, NoCs, coherence controllers, cores) is written as a set of
callbacks scheduled on this kernel, which keeps whole-system runs reproducible
bit-for-bit from a single seed.
"""

from repro.engine.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.engine.events import Event, EventQueue
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator

__all__ = [
    "ConfigurationError",
    "DeterministicRng",
    "Event",
    "EventQueue",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "Simulator",
]
