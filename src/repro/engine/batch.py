"""Batched epoch scheduling: the cohort (calendar) event queue.

The heap-based :class:`~repro.engine.events.EventQueue` pays an O(log n)
tuple-compare push *and* pop per event. Profiles of full runs show the
overwhelming majority of events are scheduled a short, bounded distance
into the future (L1 hit latencies, mesh hops, memory round trips, tone
windows), which is the textbook calendar-queue regime: keep a ring of
per-cycle *cohort* buckets and drain each cycle's cohort as one list walk.

Ordering is **exactly** the heap's ``(time, seq)`` total order, which is
what makes the batched kernel digest-identical to the heap kernel:

* Within one bucket, events append in ``seq`` order (appends happen in
  schedule order and ``seq`` is monotonic), so a list walk *is* the heap
  order for that cycle.
* Events scheduled beyond the ring window land in a spill heap keyed by
  ``(time, seq)``. For any cycle T there is a single crossover: while T is
  outside the window every schedule for T spills, and once the window
  reaches T every schedule for T buckets — the ring base only grows. All
  spilled events for T therefore precede all bucketed events for T in
  ``seq``, so pulling the spill (heap-ordered) into the bucket *before*
  later appends preserves the total order.
* An event scheduled for the *current* cycle during that cycle's drain
  appends to the bucket being walked and is picked up by the same walk —
  the "same-cycle cohort drains in one pass without re-entering the heap"
  property the batched kernel exists for.

The queue exposes the same observable surface the simulator needs
(``schedule``, ``__len__``, ``peek_time``, ``pop``) so tests and
diagnostics treat both kernels alike.
"""

from __future__ import annotations

import heapq
import os
from typing import Callable, List, Optional, Tuple

from repro.engine.errors import SimulationError
from repro.engine.events import Event

#: Ring width in cycles. Must be a power of two and comfortably larger than
#: the longest common delay (memory round trips ~80, wireless backoff up to
#: a few hundred); rarer longer delays spill to the heap and are pulled
#: back as the window advances.
COHORT_WINDOW = 4096

_ENV_FLAG = "REPRO_BATCHED_KERNEL"
_FALSY = ("0", "false", "off", "no")


def _env_default() -> bool:
    raw = os.environ.get(_ENV_FLAG)
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSY


#: Process-wide default for new :class:`~repro.engine.simulator.Simulator`
#: instances. The batched kernel is bit-identical to the heap kernel (see
#: tests/test_batch_kernel.py and the golden digests), so it defaults on;
#: ``REPRO_BATCHED_KERNEL=0`` or :func:`set_batched_default` force the heap
#: path (the A/B baseline for benchmarks and the digest-neutrality suite).
_batched_default = _env_default()


def batched_default() -> bool:
    """Whether new simulators use the cohort queue (module docstring)."""
    return _batched_default


def set_batched_default(enabled: bool) -> bool:
    """Set the process-wide kernel choice; returns the previous value."""
    global _batched_default
    previous = _batched_default
    _batched_default = bool(enabled)
    return previous


class CohortQueue:
    """Cycle-bucketed event queue with heap-identical ordering.

    Drop-in for :class:`~repro.engine.events.EventQueue` as far as the
    simulator is concerned; the drain loop in ``Simulator.run`` walks the
    buckets directly (mirroring how it walks the heap directly).
    """

    __slots__ = (
        "_buckets",
        "_mask",
        "_window",
        "_spill",
        "_seq",
        "_live",
        "_ring_live",
        "_base",
        "_horizon",
    )

    def __init__(self, window: int = COHORT_WINDOW) -> None:
        if window <= 0 or window & (window - 1):
            raise SimulationError(f"cohort window must be a power of two, got {window}")
        self._window = window
        self._mask = window - 1
        self._buckets: List[List[Event]] = [[] for _ in range(window)]
        #: Events whose cycle lies at or beyond ``_horizon``.
        self._spill: List[Tuple[int, int, Event]] = []
        self._seq = 0
        self._live = 0
        #: Live events currently resident in the ring (excludes spill).
        self._ring_live = 0
        #: Smallest cycle the ring can currently represent. Advanced by the
        #: simulator's drain loop (never rewound).
        self._base = 0
        #: ``_base + _window``, maintained as one field so the schedule hot
        #: path tests a single attribute.
        self._horizon = window

    def __len__(self) -> int:
        return self._live

    # ------------------------------------------------------------- schedule

    def schedule(self, time: int, callback: Callable[[], None]) -> Event:
        """Enqueue ``callback`` at absolute cycle ``time`` (seq-ordered)."""
        seq = self._seq
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.cancelled = False
        self._seq = seq + 1
        self._live += 1
        if time < self._horizon:
            self._buckets[time & self._mask].append(event)
            self._ring_live += 1
        else:
            heapq.heappush(self._spill, (time, seq, event))
        return event

    # ------------------------------------------------------------ advancing

    def advance_base(self, base: int) -> None:
        """Move the ring window to ``[base, base + window)``.

        Pulls every spilled event now inside the window into its bucket.
        Heap pops come out in ``(time, seq)`` order and, per the crossover
        argument in the module docstring, precede any future appends for
        the same cycle — total order is preserved.
        """
        self._base = base
        horizon = base + self._window
        self._horizon = horizon
        spill = self._spill
        if not spill:
            return
        buckets = self._buckets
        mask = self._mask
        pulled = 0
        while spill and spill[0][0] < horizon:
            _, _, event = heapq.heappop(spill)
            buckets[event.time & mask].append(event)
            pulled += 1
        self._ring_live += pulled

    def next_event_time(self, start: int, bound: Optional[int] = None) -> Optional[int]:
        """Cycle of the next live event at or after ``start``.

        Scans the ring from ``start`` (bounded by occupancy and the spill
        head) and considers the spill heap; returns None when empty or when
        the next event lies beyond ``bound``.
        """
        self._drop_dead_spill()
        spill_head = self._spill[0][0] if self._spill else None
        if self._ring_live:
            buckets = self._buckets
            mask = self._mask
            limit = self._horizon
            cycle = start
            while cycle < limit:
                if bound is not None and cycle > bound:
                    return None
                if spill_head is not None and spill_head <= cycle:
                    break  # pull the spill before walking further
                bucket = buckets[cycle & mask]
                if bucket:
                    for event in bucket:
                        if not event.cancelled:
                            return cycle
                    # Entire cohort cancelled: reclaim the bucket now.
                    self._live -= len(bucket)
                    self._ring_live -= len(bucket)
                    del bucket[:]
                cycle += 1
        if spill_head is None:
            return None
        if bound is not None and spill_head > bound:
            return None
        return spill_head

    def _drop_dead_spill(self) -> None:
        spill = self._spill
        while spill and spill[0][2].cancelled:
            heapq.heappop(spill)
            self._live -= 1

    # ----------------------------------------------- EventQueue-compat API

    def peek_time(self) -> Optional[int]:
        """Cycle of the next live event, or None (EventQueue-compatible)."""
        return self.next_event_time(self._base)

    def pop(self) -> Event:
        """Remove and return the next live event (EventQueue-compatible).

        Used by diagnostics and tests, not by the batched drain loop (which
        walks whole cohorts in place).
        """
        time = self.peek_time()
        if time is None:
            raise SimulationError("pop() on an empty event queue")
        self.advance_base(time)
        bucket = self._buckets[time & self._mask]
        while bucket:
            event = bucket.pop(0)
            self._live -= 1
            self._ring_live -= 1
            if not event.cancelled and event.time == time:
                return event
        raise SimulationError("pop() on an empty event queue")  # pragma: no cover
