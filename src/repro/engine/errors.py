"""Exception hierarchy for the simulator.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still being able to distinguish configuration mistakes from protocol bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly (e.g. scheduling in the past)."""


class ProtocolError(ReproError):
    """A coherence-protocol invariant was violated.

    This always indicates a bug in a controller state machine (or a test
    deliberately driving one into an illegal state), never a user error.
    """
