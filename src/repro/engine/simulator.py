"""The simulation kernel: a clock plus an event queue.

Every hardware structure in the library is modelled as plain Python objects
that react to callbacks scheduled here. Time is an integer cycle count at the
core clock (1 GHz in the paper's Table III, so 1 cycle == 1 ns, which is also
how the wireless channel latencies are expressed).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.engine.errors import SimulationError
from repro.engine.events import Event, EventQueue
from repro.engine.rng import DeterministicRng


class Simulator:
    """Owns the clock, the event queue, and the root RNG.

    Parameters
    ----------
    seed:
        Root seed from which all component RNG streams are split.
    """

    def __init__(self, seed: int = 0) -> None:
        self.queue = EventQueue()
        self.now = 0
        self.rng = DeterministicRng(seed)
        self._events_executed = 0
        self._stopped = False
        #: Callbacks invoked after :meth:`run` fully drains the queue (the
        #: heap is empty — not on an ``until`` bound or a :meth:`stop`).
        #: Hooks must not schedule new events; they are for end-of-run
        #: bookkeeping (e.g. the observability orphan-span audit + final
        #: counter sample). The list is empty by default and costs one
        #: truthiness test per :meth:`run` return.
        self.drain_hooks: List[Callable[[], None]] = []

    @property
    def events_executed(self) -> int:
        """Total callbacks run so far (a cheap progress / cost metric)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued.

        Periodic observers (e.g. the online invariant checker) use this to
        decide whether to re-arm: a self-rescheduling event would otherwise
        keep :meth:`run`'s drain loop alive forever.
        """
        return len(self.queue)

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` cycles from now (delay >= 0).

        The event creation and heap push are inlined (mirroring
        :meth:`EventQueue.schedule` exactly): scheduling is the most-called
        operation in the kernel and the extra call frame was measurable.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        queue = self.queue
        seq = queue._seq
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.cancelled = False
        queue._seq = seq + 1
        queue._live += 1
        heapq.heappush(queue._heap, (time, seq, event))
        return event

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute cycle ``time`` (time >= now).

        Inlined like :meth:`schedule`; the ordering and sequence-number
        semantics are identical to ``EventQueue.schedule``.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {time}, already at cycle {self.now}"
            )
        queue = self.queue
        seq = queue._seq
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.cancelled = False
        queue._seq = seq + 1
        queue._live += 1
        heapq.heappush(queue._heap, (time, seq, event))
        return event

    def stop(self) -> None:
        """Request that :meth:`run` return before the next event."""
        self._stopped = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue; return the final cycle.

        This is the hottest loop in the simulator (profiles put it and the
        queue operations above 40% of total time for a full run), so it
        works on the queue's heap directly instead of going through
        ``peek_time()``/``pop()``: one inline tombstone scan serves both
        the peek and the pop, and events sharing the current cycle drain in
        a tight inner loop that skips the redundant ``until`` re-check.
        Ordering is identical to the method-call path — the heap is ordered
        by ``(time, seq)`` either way — so determinism is unaffected.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this cycle. The
            clock is left at ``until`` in that case.
        max_events:
            Safety valve for tests: raise :class:`SimulationError` *before*
            executing event ``max_events + 1`` in this call, i.e. at most
            ``max_events`` callbacks run (a runaway protocol loop otherwise
            spins forever).
        """
        executed_here = 0
        self._stopped = False
        queue = self.queue
        heap = queue._heap  # the list object is stable for the queue's life
        heappop = heapq.heappop
        if until is None and max_events is None:
            # Fast path for the common full-drain call: no bound checks
            # inside the loop. Semantics are identical to the general loop
            # below with both bounds absent.
            while not self._stopped:
                while heap and heap[0][2].cancelled:
                    heappop(heap)
                    queue._live -= 1
                if not heap:
                    break
                now = heap[0][0]
                self.now = now
                while heap and heap[0][0] == now and not self._stopped:
                    event = heappop(heap)[2]
                    queue._live -= 1
                    if event.cancelled:
                        continue
                    event.callback()
                    self._events_executed += 1
            if self.drain_hooks and not heap:
                for hook in self.drain_hooks:
                    hook()
            return self.now
        while not self._stopped:
            # Inline dead-head skip: one scan where peek_time()+pop() did two.
            while heap and heap[0][2].cancelled:
                heappop(heap)
                queue._live -= 1
            if not heap:
                break
            now = heap[0][0]
            if until is not None and now > until:
                self.now = until
                break
            self.now = now
            # Batch-drain every event of the current cycle: the ``until``
            # bound cannot trip again until the clock advances.
            while heap and heap[0][0] == now and not self._stopped:
                event = heappop(heap)[2]
                queue._live -= 1
                if event.cancelled:
                    continue
                if max_events is not None and executed_here >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "likely a livelocked protocol transaction"
                    )
                event.callback()
                self._events_executed += 1
                executed_here += 1
        if self.drain_hooks and not heap:
            for hook in self.drain_hooks:
                hook()
        return self.now
