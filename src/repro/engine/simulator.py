"""The simulation kernel: a clock plus an event queue.

Every hardware structure in the library is modelled as plain Python objects
that react to callbacks scheduled here. Time is an integer cycle count at the
core clock (1 GHz in the paper's Table III, so 1 cycle == 1 ns, which is also
how the wireless channel latencies are expressed).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.engine.errors import SimulationError
from repro.engine.events import Event, EventQueue
from repro.engine.rng import DeterministicRng


class Simulator:
    """Owns the clock, the event queue, and the root RNG.

    Parameters
    ----------
    seed:
        Root seed from which all component RNG streams are split.
    """

    def __init__(self, seed: int = 0) -> None:
        self.queue = EventQueue()
        self.now = 0
        self.rng = DeterministicRng(seed)
        self._events_executed = 0
        self._stopped = False

    @property
    def events_executed(self) -> int:
        """Total callbacks run so far (a cheap progress / cost metric)."""
        return self._events_executed

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` cycles from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.queue.schedule(self.now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute cycle ``time`` (time >= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {time}, already at cycle {self.now}"
            )
        return self.queue.schedule(time, callback)

    def stop(self) -> None:
        """Request that :meth:`run` return before the next event."""
        self._stopped = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue; return the final cycle.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this cycle. The
            clock is left at ``until`` in that case.
        max_events:
            Safety valve for tests: raise :class:`SimulationError` if more
            than this many events execute in this call (a runaway protocol
            loop otherwise spins forever).
        """
        executed_here = 0
        self._stopped = False
        while True:
            if self._stopped:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            event = self.queue.pop()
            self.now = event.time
            event.callback()
            self._events_executed += 1
            executed_here += 1
            if max_events is not None and executed_here > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "likely a livelocked protocol transaction"
                )
        return self.now
