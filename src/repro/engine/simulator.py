"""The simulation kernel: a clock plus an event queue.

Every hardware structure in the library is modelled as plain Python objects
that react to callbacks scheduled here. Time is an integer cycle count at the
core clock (1 GHz in the paper's Table III, so 1 cycle == 1 ns, which is also
how the wireless channel latencies are expressed).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.engine.batch import CohortQueue, batched_default
from repro.engine.errors import SimulationError
from repro.engine.events import Event, EventQueue
from repro.engine.rng import DeterministicRng


class Simulator:
    """Owns the clock, the event queue, and the root RNG.

    Parameters
    ----------
    seed:
        Root seed from which all component RNG streams are split.
    batched:
        Select the event-queue kernel: True for the cohort (calendar)
        queue of :mod:`repro.engine.batch`, False for the classic binary
        heap, None (default) for the process-wide default
        (:func:`repro.engine.batch.batched_default`). The two kernels
        execute callbacks in exactly the same ``(time, seq)`` order, so
        simulated behaviour — and therefore every golden digest — is
        identical either way; only wall-clock differs.
    """

    def __init__(self, seed: int = 0, batched: Optional[bool] = None) -> None:
        if batched is None:
            batched = batched_default()
        self.batched = batched
        self.queue = CohortQueue() if batched else EventQueue()
        self.now = 0
        self.rng = DeterministicRng(seed)
        self._events_executed = 0
        self._stopped = False
        #: Callbacks invoked after :meth:`run` fully drains the queue (the
        #: heap is empty — not on an ``until`` bound or a :meth:`stop`).
        #: Hooks must not schedule new events; they are for end-of-run
        #: bookkeeping (e.g. the observability orphan-span audit + final
        #: counter sample). The list is empty by default and costs one
        #: truthiness test per :meth:`run` return.
        self.drain_hooks: List[Callable[[], None]] = []

    @property
    def events_executed(self) -> int:
        """Total callbacks run so far (a cheap progress / cost metric)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued.

        Periodic observers (e.g. the online invariant checker) use this to
        decide whether to re-arm: a self-rescheduling event would otherwise
        keep :meth:`run`'s drain loop alive forever.
        """
        return len(self.queue)

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` cycles from now (delay >= 0).

        The event creation and queue insert are inlined for both kernels
        (mirroring :meth:`EventQueue.schedule` / :meth:`CohortQueue.schedule`
        exactly): scheduling is the most-called operation in the kernel and
        the extra call frame was measurable.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        queue = self.queue
        seq = queue._seq
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.cancelled = False
        queue._seq = seq + 1
        queue._live += 1
        if self.batched:
            if time < queue._horizon:
                queue._buckets[time & queue._mask].append(event)
                queue._ring_live += 1
            else:
                heapq.heappush(queue._spill, (time, seq, event))
        else:
            heapq.heappush(queue._heap, (time, seq, event))
        return event

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute cycle ``time`` (time >= now).

        Inlined like :meth:`schedule`; the ordering and sequence-number
        semantics are identical to ``EventQueue.schedule``.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {time}, already at cycle {self.now}"
            )
        queue = self.queue
        seq = queue._seq
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.cancelled = False
        queue._seq = seq + 1
        queue._live += 1
        if self.batched:
            if time < queue._horizon:
                queue._buckets[time & queue._mask].append(event)
                queue._ring_live += 1
            else:
                heapq.heappush(queue._spill, (time, seq, event))
        else:
            heapq.heappush(queue._heap, (time, seq, event))
        return event

    def stop(self) -> None:
        """Request that :meth:`run` return before the next event."""
        self._stopped = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue; return the final cycle.

        This is the hottest loop in the simulator (profiles put it and the
        queue operations above 40% of total time for a full run), so it
        works on the queue's heap directly instead of going through
        ``peek_time()``/``pop()``: one inline tombstone scan serves both
        the peek and the pop, and events sharing the current cycle drain in
        a tight inner loop that skips the redundant ``until`` re-check.
        Ordering is identical to the method-call path — the heap is ordered
        by ``(time, seq)`` either way — so determinism is unaffected.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this cycle. The
            clock is left at ``until`` in that case.
        max_events:
            Safety valve for tests: raise :class:`SimulationError` *before*
            executing event ``max_events + 1`` in this call, i.e. at most
            ``max_events`` callbacks run (a runaway protocol loop otherwise
            spins forever).
        """
        if self.batched:
            return self._run_batched(until, max_events)
        executed_here = 0
        self._stopped = False
        queue = self.queue
        heap = queue._heap  # the list object is stable for the queue's life
        heappop = heapq.heappop
        if until is None and max_events is None:
            # Fast path for the common full-drain call: no bound checks
            # inside the loop. Semantics are identical to the general loop
            # below with both bounds absent.
            while not self._stopped:
                while heap and heap[0][2].cancelled:
                    heappop(heap)
                    queue._live -= 1
                if not heap:
                    break
                now = heap[0][0]
                self.now = now
                while heap and heap[0][0] == now and not self._stopped:
                    event = heappop(heap)[2]
                    queue._live -= 1
                    if event.cancelled:
                        continue
                    event.callback()
                    self._events_executed += 1
            if self.drain_hooks and not heap:
                for hook in self.drain_hooks:
                    hook()
            return self.now
        while not self._stopped:
            # Inline dead-head skip: one scan where peek_time()+pop() did two.
            while heap and heap[0][2].cancelled:
                heappop(heap)
                queue._live -= 1
            if not heap:
                break
            now = heap[0][0]
            if until is not None and now > until:
                self.now = until
                break
            self.now = now
            # Batch-drain every event of the current cycle: the ``until``
            # bound cannot trip again until the clock advances.
            while heap and heap[0][0] == now and not self._stopped:
                event = heappop(heap)[2]
                queue._live -= 1
                if event.cancelled:
                    continue
                if max_events is not None and executed_here >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "likely a livelocked protocol transaction"
                    )
                event.callback()
                self._events_executed += 1
                executed_here += 1
        if self.drain_hooks and not heap:
            for hook in self.drain_hooks:
                hook()
        return self.now

    def _run_batched(self, until: Optional[int], max_events: Optional[int]) -> int:
        """The cohort-queue drain: same semantics as the heap loop above.

        Each iteration advances the clock to the next occupied cycle and
        drains that cycle's *entire cohort* as one list walk — including
        events the cohort schedules for its own cycle, which append to the
        bucket being walked and are picked up by the same pass. No heap is
        re-entered per event; ordering is the identical ``(time, seq)``
        total order (see :mod:`repro.engine.batch`), so simulated behaviour
        matches the heap kernel bit for bit.
        """
        executed_here = 0
        self._stopped = False
        queue = self.queue
        buckets = queue._buckets
        mask = queue._mask
        spill = queue._spill
        heappop = heapq.heappop
        cycle = self.now
        half_window = queue._window >> 1
        adv_at = queue._base + half_window
        while not self._stopped:
            # ---- locate the next cycle holding a live event (inline scan;
            # ---- the method-call version lives on CohortQueue for tests).
            if queue._ring_live:
                limit = queue._horizon
                while cycle < limit and not buckets[cycle & mask]:
                    cycle += 1
                if cycle >= limit:  # pragma: no cover - ring_live guards this
                    queue.advance_base(cycle)
                    adv_at = cycle + half_window
                    continue
            else:
                while spill and spill[0][2].cancelled:
                    heappop(spill)
                    queue._live -= 1
                if not spill:
                    break  # fully drained; the clock stays, like the heap path
                cycle = spill[0][0]
                queue.advance_base(cycle)
                adv_at = cycle + half_window
                continue  # spill pulled into the ring; rescan from its cycle
            bucket = buckets[cycle & mask]
            # Tombstone-only cohorts must not advance the clock (the heap
            # path pops dead heads before reading ``now``): reclaim and move
            # on without touching ``self.now``.
            live_at = -1
            for i, event in enumerate(bucket):
                if not event.cancelled:
                    live_at = i
                    break
            if live_at < 0:
                dead = len(bucket)
                queue._live -= dead
                queue._ring_live -= dead
                del bucket[:]
                continue
            if until is not None and cycle > until:
                self.now = until
                break
            if cycle >= adv_at:
                # Re-centre the window every half-window of progress: the
                # horizon stays >= window/2 ahead of the clock (so schedules
                # essentially never spill) and due spill events are pulled
                # into their buckets while the clock is still short of them
                # (spill times always lie at/beyond the pre-advance horizon).
                queue.advance_base(cycle)
                adv_at = cycle + half_window
            now = cycle
            self.now = now
            # ---- drain the whole cohort in one pass. The bound is re-read
            # ---- each step so same-cycle appends made by callbacks extend
            # ---- the current pass instead of re-entering any queue.
            consumed = 0
            if max_events is None:
                while consumed < len(bucket) and not self._stopped:
                    event = bucket[consumed]
                    consumed += 1
                    if event.cancelled:
                        continue
                    event.callback()
                    self._events_executed += 1
            else:
                while consumed < len(bucket) and not self._stopped:
                    event = bucket[consumed]
                    consumed += 1
                    if event.cancelled:
                        continue
                    if executed_here >= max_events:
                        queue._live -= consumed
                        queue._ring_live -= consumed
                        del bucket[:consumed]
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely a livelocked protocol transaction"
                        )
                    event.callback()
                    self._events_executed += 1
                    executed_here += 1
            queue._live -= consumed
            queue._ring_live -= consumed
            if consumed == len(bucket):
                del bucket[:]
            else:  # stopped mid-cohort: keep the unconsumed tail
                del bucket[:consumed]
        if self.drain_hooks and not len(queue):
            for hook in self.drain_hooks:
                hook()
        return self.now
