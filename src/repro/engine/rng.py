"""Deterministic, splittable random number generation.

Whole-system determinism is a hard requirement: two runs with the same
configuration and seed must produce identical cycle counts, or the
benchmark harness could not attribute differences to protocol changes.
Python's global :mod:`random` state is therefore never used. Instead each
component derives its own :class:`DeterministicRng` stream by *splitting*
a parent stream with a string label, so adding a consumer in one subsystem
never perturbs the draws seen by another.

The generator is SplitMix64 (Steele et al., "Fast Splittable Pseudorandom
Number Generators"), chosen for its tiny state, good statistical quality for
simulation workloads, and trivially portable integer arithmetic.
"""

from __future__ import annotations

import math

_MASK64 = (1 << 64) - 1
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15
#: 2**-53, the float ulp used to map 53 random bits onto [0, 1).
_INV_2_53 = 1.0 / (1 << 53)


def _mix64(z: int) -> int:
    """Finalization mix of SplitMix64 (variant 13)."""
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    return z ^ (z >> 31)


def _hash_label(label: str) -> int:
    """Hash a split label into 64 bits, stable across processes.

    ``hash()`` is salted per-process for strings, so an FNV-1a hash is used
    instead to keep split streams reproducible across runs.
    """
    h = 0xCBF29CE484222325
    for byte in label.encode("utf-8"):
        h = (h ^ byte) * 0x100000001B3 & _MASK64
    return h


class DeterministicRng:
    """A splittable SplitMix64 pseudorandom stream.

    Parameters
    ----------
    seed:
        Any integer; it is mixed before use, so small consecutive seeds
        still yield uncorrelated streams.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = _mix64(seed & _MASK64)

    def next_u64(self) -> int:
        """Return the next raw 64-bit output.

        The :func:`_mix64` finalizer is inlined: this is the single hottest
        function in the simulator (every think gap, jitter, and backoff
        draws from it), and the extra call frame measurably matters. The
        arithmetic is bit-for-bit identical to ``_mix64``.
        """
        state = (self._state + _GOLDEN_GAMMA) & _MASK64
        self._state = state
        z = (state ^ (state >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
        z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
        return z ^ (z >> 31)

    def split(self, label: str) -> "DeterministicRng":
        """Derive an independent child stream identified by ``label``.

        Splitting does not advance this stream, so the set of child labels
        used elsewhere never changes the draws produced here.
        """
        return DeterministicRng(_mix64(self._state ^ _hash_label(label)))

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range [low, high]."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def random(self) -> float:
        """Return a uniform float in [0, 1) with 53 bits of precision.

        Like :meth:`next_u64`, the mix is inlined (identical arithmetic).
        """
        state = (self._state + _GOLDEN_GAMMA) & _MASK64
        self._state = state
        z = (state ^ (state >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
        z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
        return ((z ^ (z >> 31)) >> 11) * _INV_2_53

    def choice(self, seq):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.next_u64() % len(seq)]

    def shuffle(self, items: list) -> None:
        """Fisher-Yates shuffle of ``items`` in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_u64() % (i + 1)
            items[i], items[j] = items[j], items[i]

    def geometric(self, mean: float) -> int:
        """Sample a geometric-ish integer >= 1 with the given mean.

        Used for think-time gaps between memory references; a closed-form
        inverse-CDF sample keeps it branch-free and fast.
        """
        if mean <= 1.0:
            return 1
        p = 1.0 / mean
        u = self.random()
        # Inverse CDF of geometric distribution on {1, 2, ...}.
        return max(1, int(math.ceil(math.log(1.0 - u) / math.log(1.0 - p))))

    def buffered(self, block: int = 1024) -> "DeterministicRng":
        """Return a block-refilled stream continuing from this state.

        SplitMix64's state advances by a constant per draw, so draw ``i``
        from state ``s`` is the pure function ``mix64(s + (i+1)*gamma)`` —
        which makes precomputing a whole block of future outputs with
        numpy bit-for-bit identical to drawing them one at a time. The
        returned stream produces *exactly* the sequence this stream would
        have produced, just amortizing the mix arithmetic over vectorized
        refills. Falls back to this (scalar) stream when numpy is absent.
        """
        try:
            return _BufferedRng(self._state, block)
        except ImportError:  # no numpy: scalar stream is already correct
            return self


class _BufferedRng(DeterministicRng):
    """A :class:`DeterministicRng` whose raw outputs come from vectorized
    block refills (see :meth:`DeterministicRng.buffered`). ``_state`` sits
    at the *end* of the refilled block; :meth:`split` backs out the
    unconsumed draws so child streams match the scalar stream exactly."""

    __slots__ = ("_block", "_buf", "_pos", "_have")

    def __init__(self, state: int, block: int) -> None:
        import numpy  # noqa: F401 - probe for availability at build time

        self._state = state  # adopted, NOT re-mixed: we continue the stream
        self._block = block
        self._buf: list = []
        self._pos = 0
        self._have = 0

    def _refill(self) -> None:
        import numpy as np

        n = self._block
        steps = np.arange(1, n + 1, dtype=np.uint64)
        z = np.uint64(self._state) + np.uint64(_GOLDEN_GAMMA) * steps
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z ^= z >> np.uint64(31)
        # Plain Python ints on the way out: downstream address arithmetic
        # must not silently become numpy scalar arithmetic.
        self._buf = z.tolist()
        self._pos = 0
        self._have = n
        self._state = (self._state + n * _GOLDEN_GAMMA) & _MASK64

    def next_u64(self) -> int:
        pos = self._pos
        if pos >= self._have:
            self._refill()
            pos = 0
        self._pos = pos + 1
        return self._buf[pos]

    def random(self) -> float:
        pos = self._pos
        if pos >= self._have:
            self._refill()
            pos = 0
        self._pos = pos + 1
        return (self._buf[pos] >> 11) * _INV_2_53

    def split(self, label: str) -> DeterministicRng:
        pending = self._have - self._pos
        state = (self._state - pending * _GOLDEN_GAMMA) & _MASK64
        return DeterministicRng(_mix64(state ^ _hash_label(label)))
