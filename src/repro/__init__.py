"""WiDir: a wireless-enabled directory cache coherence protocol.

Full-system Python reproduction of *WiDir: A Wireless-Enabled Directory
Cache Coherence Protocol* (Franques et al., HPCA 2021): an event-driven
manycore simulator with a MESI Dir_i_B baseline, the WiDir protocol
(Wireless state, BrWirUpgr/WirUpd/WirDwgr/WirInv transactions, Jamming and
ToneAck primitives), a wired 2D-mesh NoC, a BRS-MAC wireless NoC, synthetic
SPLASH-3/PARSEC workload models, energy accounting, and a harness that
regenerates every table and figure of the paper's evaluation.

Quickstart (the stable API lives in :mod:`repro.api`; see docs/API.md)::

    from repro import api

    diff = api.compare("radiosity", cores=16, memops=500)
    print(diff.speedup)                 # > 1.0: WiDir is faster

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the system
inventory and the paper-to-repo substitution notes.

Deprecated (one release grace, still functional): the top-level
``repro.run_app`` / ``repro.run_pair`` shims — use
:func:`repro.api.simulate` / :func:`repro.api.compare` instead.
"""

import warnings as _warnings

from repro.config import (
    SystemConfig,
    baseline_config,
    paper_config,
    protocol_config,
    widir_config,
)
from repro.harness.runner import SimulationResult
from repro.system import Manycore
from repro.workloads import ALL_APPS, APP_PROFILES, AppProfile, build_traces

__version__ = "1.1.0"

__all__ = [
    "ALL_APPS",
    "APP_PROFILES",
    "AppProfile",
    "Manycore",
    "SimulationResult",
    "SystemConfig",
    "api",
    "baseline_config",
    "build_traces",
    "paper_config",
    "protocol_config",
    "run_app",
    "run_pair",
    "widir_config",
    "__version__",
]

#: name -> (replacement hint, implementation module, attribute).
_DEPRECATED = {
    "run_app": ("repro.api.simulate", "repro.harness.runner", "run_app"),
    "run_pair": ("repro.api.compare", "repro.harness.runner", "run_pair"),
}


def __getattr__(name):
    """Lazy submodule access plus deprecation shims (PEP 562).

    ``repro.api`` is resolved on first touch so ``from repro import api``
    works without eagerly importing the facade everywhere. The legacy
    top-level ``run_app`` / ``run_pair`` keep working for one release but
    warn: the stable spellings are ``repro.api.simulate`` /
    ``repro.api.compare``.
    """
    if name == "api":
        import repro.api as api_module

        return api_module
    if name in _DEPRECATED:
        replacement, module_name, attribute = _DEPRECATED[name]
        _warnings.warn(
            f"repro.{name} is deprecated and will be removed in the next "
            f"release; use {replacement} (see docs/API.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
