"""WiDir: a wireless-enabled directory cache coherence protocol.

Full-system Python reproduction of *WiDir: A Wireless-Enabled Directory
Cache Coherence Protocol* (Franques et al., HPCA 2021): an event-driven
manycore simulator with a MESI Dir_i_B baseline, the WiDir protocol
(Wireless state, BrWirUpgr/WirUpd/WirDwgr/WirInv transactions, Jamming and
ToneAck primitives), a wired 2D-mesh NoC, a BRS-MAC wireless NoC, synthetic
SPLASH-3/PARSEC workload models, energy accounting, and a harness that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import run_pair
    base, widir = run_pair("radiosity", num_cores=16, memops_per_core=500)
    print(widir.cycles / base.cycles)   # < 1.0: WiDir is faster

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the system
inventory and the paper-to-repo substitution notes.
"""

from repro.config import (
    SystemConfig,
    baseline_config,
    paper_config,
    widir_config,
)
from repro.harness.runner import SimulationResult, run_app, run_pair
from repro.system import Manycore
from repro.workloads import ALL_APPS, APP_PROFILES, AppProfile, build_traces

__version__ = "1.0.0"

__all__ = [
    "ALL_APPS",
    "APP_PROFILES",
    "AppProfile",
    "Manycore",
    "SimulationResult",
    "SystemConfig",
    "baseline_config",
    "build_traces",
    "paper_config",
    "run_app",
    "run_pair",
    "widir_config",
    "__version__",
]
