"""Event-based energy model.

The paper reports (Figure 9) that the Baseline spends about 60% of energy in
the cores, 5% in the L1s, 20% in L2+directory, and 15% in the wired NoC, and
that WiDir's WNoC adds about 5.9% of WiDir's total. The per-event constants
below are calibrated to land a typical 64-core Baseline run near those shares
(the static/dynamic split and the wireless powers come from Table III and the
cited component papers; the digital constants are in the range produced by
McPAT/CACTI at 22 nm).

Units: picojoules and cycles (1 cycle = 1 ns at the 1 GHz clock, so
1 mW = 1 pJ/cycle per device).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.config.system import SystemConfig
from repro.stats.collectors import StatsRegistry


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component for one run, in picojoules."""

    core: float
    l1: float
    l2_dir: float
    noc: float
    wnoc: float

    @property
    def total(self) -> float:
        return self.core + self.l1 + self.l2_dir + self.noc + self.wnoc

    def as_dict(self) -> Dict[str, float]:
        return {
            "core": self.core,
            "l1": self.l1,
            "l2_dir": self.l2_dir,
            "noc": self.noc,
            "wnoc": self.wnoc,
        }

    def shares(self) -> Dict[str, float]:
        total = self.total
        if total <= 0:
            return {k: 0.0 for k in self.as_dict()}
        return {k: v / total for k, v in self.as_dict().items()}


@dataclass(frozen=True)
class EnergyModel:
    """Per-event and static energy constants (picojoules / mW)."""

    # Static power dominates a 22 nm manycore running memory-bound codes;
    # the per-core values below put a 64-core chip near 30 W with the
    # paper's Figure 9 Baseline decomposition (60/5/20/15), which also makes
    # the Table III wireless powers land at the paper's ~6% WNoC share.
    # Core: dynamic per retired instruction + per-core static power.
    core_pj_per_instruction: float = 80.0
    core_static_mw: float = 280.0
    # L1: per access.
    l1_pj_per_access: float = 10.0
    l1_static_mw: float = 23.0
    # L2 + directory: per LLC/directory access.
    l2_pj_per_access: float = 50.0
    l2_static_mw: float = 94.0
    # Wired NoC: per flit-hop (a data message is line/link_width flits).
    noc_pj_per_hop_flit: float = 8.0
    noc_static_mw_per_router: float = 70.0
    # Wireless (Table III): per-node powers in mW == pJ/cycle.
    wnoc_tx_mw: float = 39.4
    wnoc_rx_mw: float = 39.4
    wnoc_idle_mw: float = 26.9
    wnoc_wake_pj: float = 1.14  # transient energy when un-gating amplifiers

    def compute(
        self, config: SystemConfig, stats: StatsRegistry, cycles: int
    ) -> EnergyBreakdown:
        """Fold a finished run's statistics into an energy breakdown."""
        cores = config.num_cores
        instructions = stats.get_counter("core.total.instructions")
        l1_accesses = stats.get_counter("l1.total.accesses")
        llc_accesses = stats.get_counter("dir.total.llc_accesses")
        memory_ops = sum(
            stats.get_counter(f"mem{i}.reads") + stats.get_counter(f"mem{i}.writes")
            for i in range(config.memory.num_controllers)
        )

        core_energy = (
            instructions * self.core_pj_per_instruction
            + cores * self.core_static_mw * cycles
        )
        l1_energy = (
            l1_accesses * self.l1_pj_per_access + cores * self.l1_static_mw * cycles
        )
        # Directory/LLC work includes the off-chip transactions it initiates.
        l2_energy = (
            (llc_accesses + memory_ops) * self.l2_pj_per_access
            + cores * self.l2_static_mw * cycles
        )

        control_hops = stats.get_counter("noc.total_hops")
        data_messages = stats.get_counter("noc.data_messages")
        flits_per_line = max(
            1, (config.l1.line_bytes * 8) // config.noc.link_width_bits
        )
        # Approximate data-message hops with the run's average hop count.
        messages = stats.get_counter("noc.messages")
        avg_hops = control_hops / messages if messages else 0.0
        data_flit_hops = data_messages * avg_hops * (flits_per_line - 1)
        noc_energy = (
            (control_hops + data_flit_hops) * self.noc_pj_per_hop_flit
            + cores * self.noc_static_mw_per_router * cycles
        )

        wnoc_energy = 0.0
        if config.uses_wireless:
            frame_cycles = config.wireless.frame_cycles
            frames = stats.get_counter("wnoc.frames")
            busy = stats.get_counter("wnoc.busy_cycles")
            tone_ops = stats.get_counter("tone.operations")
            # Transmitter active for every busy cycle (successful frames,
            # collisions, jams all burn the sender's amplifier).
            tx_energy = busy * self.wnoc_tx_mw
            # Every node's receiver listens to every delivered frame.
            rx_energy = frames * frame_cycles * self.wnoc_rx_mw * (cores - 1)
            # Tone channel activity is brief: charge one cycle per node per op.
            tone_energy = tone_ops * cores * self.wnoc_rx_mw
            # Power-gated idle the rest of the time, plus wake transients.
            active_node_cycles = busy + frames * frame_cycles * (cores - 1)
            idle_node_cycles = max(0, cores * cycles - active_node_cycles)
            idle_energy = idle_node_cycles * self.wnoc_idle_mw
            wake_energy = (frames + tone_ops) * cores * self.wnoc_wake_pj
            wnoc_energy = tx_energy + rx_energy + tone_energy + idle_energy + wake_energy

        return EnergyBreakdown(
            core=core_energy,
            l1=l1_energy,
            l2_dir=l2_energy,
            noc=noc_energy,
            wnoc=wnoc_energy,
        )
