"""Energy accounting.

First-order event-based energy model in the spirit of the paper's
McPAT / CACTI / DSENT composition: component energy = (event counts from the
run's :class:`~repro.stats.collectors.StatsRegistry`) x (per-event energies
in :class:`~repro.energy.models.EnergyModel`) + static power x runtime. The
wireless components use the paper's Table III numbers directly (39.4 mW
transmit/receive, 26.9 mW power-gated idle).
"""

from repro.energy.models import EnergyBreakdown, EnergyModel

__all__ = ["EnergyBreakdown", "EnergyModel"]
