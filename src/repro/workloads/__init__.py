"""Synthetic SPLASH-3 / PARSEC workload models.

The paper evaluates 20 applications (Table IV). Running their binaries needs
an x86 execution-driven simulator, so — per the substitution policy in
DESIGN.md — each application is modelled as a *memory-reference generator*
whose observable statistics (miss ratio, read/write mix, sharing degree,
synchronization intensity) are calibrated to the paper's characterization.
The coherence protocol under study only ever sees the reference stream, so
this preserves exactly the behaviour the evaluation depends on.

Layout: :mod:`~repro.workloads.layout` fixes the address-space geometry,
:mod:`~repro.workloads.patterns` provides reusable access-pattern emitters,
:mod:`~repro.workloads.profiles` declares the 20 application profiles, and
:mod:`~repro.workloads.generator` synthesizes per-core traces from a profile.
"""

from repro.workloads.generator import build_traces
from repro.workloads.layout import AddressLayout
from repro.workloads.profiles import ALL_APPS, APP_PROFILES, AppProfile, SharingMix

__all__ = [
    "ALL_APPS",
    "APP_PROFILES",
    "AddressLayout",
    "AppProfile",
    "SharingMix",
    "build_traces",
]
