"""Trace synthesis: profile -> per-core operation traces.

``build_traces`` is a pure function of (profile, num_cores, length, seed):
the same inputs always yield the same traces, so the Baseline and WiDir
machines are driven by *identical* reference streams and their cycle counts
are directly comparable.

A trace is organized into ``profile.phases`` barrier-separated phases. Inside
a phase, each memory-reference slot draws an access class from the profile's
fractions (private-hot / private-streaming / shared / migratory), lock
sections are interleaved every ``lock_interval`` references, and geometric
think gaps between references realize the profile's memory intensity.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from repro.cpu.trace import OP_LOAD, TraceChunk, TraceOp
from repro.engine.rng import DeterministicRng
from repro.workloads.layout import AddressLayout
from repro.workloads.patterns import (
    emit_barrier_episode,
    emit_hot_access,
    emit_lock_section,
    emit_migratory_access,
    emit_shared_access,
    emit_streaming_access,
    emit_think,
)
from repro.workloads.profiles import AppProfile


def _pick_group_size(profile: AppProfile, rng: DeterministicRng) -> int:
    weights = profile.sharing_weights()
    if not weights:
        return 8
    roll = rng.random()
    cumulative = 0.0
    for size, weight in weights.items():
        cumulative += weight
        if roll < cumulative:
            return size
    return next(reversed(weights))


def build_core_trace(
    profile: AppProfile,
    core: int,
    num_cores: int,
    memops: int,
    seed: int = 0,
) -> TraceChunk:
    """Synthesize one core's trace with ``memops`` memory-reference slots.

    Returns a struct-of-arrays :class:`~repro.cpu.trace.TraceChunk` (the
    batched front end's native format; iterating it yields the same
    :class:`TraceOp` stream lists used to hold). The RNG is the buffered
    (vectorized-refill) stream, which produces bit-for-bit the draws of
    the scalar stream — traces are unchanged from the list-based builder.
    """
    rng = DeterministicRng(seed).split(f"{profile.name}-core{core}").buffered()
    layout = AddressLayout(num_cores)
    ops: List[TraceOp] = []
    think_mean = max(1, round((1.0 - profile.mem_ratio) / max(profile.mem_ratio, 1e-6)))
    phases = max(1, profile.phases)
    per_phase = max(1, memops // phases)
    cold_cursor = [core * 17]  # de-correlate the streaming walks across cores
    since_lock = rng.randint(0, profile.lock_interval) if profile.lock_interval else 0
    # A shared visit emits `burst` references, so the per-visit roll must be
    # deflated for `shared_fraction` to hold as a fraction of *references*:
    # p = f / (b*(1-f) + f).
    f = profile.shared_fraction
    b = max(1, profile.shared_burst)
    shared_roll = f / (b * (1.0 - f) + f) if f > 0 else 0.0

    for phase in range(phases):
        emitted = 0
        while emitted < per_phase:
            emitted += 1
            emit_think(ops, rng, think_mean)
            roll = rng.random()
            if roll < shared_roll:
                if (
                    profile.migratory_fraction > 0.0
                    and rng.random() < profile.migratory_fraction
                ):
                    emit_migratory_access(
                        ops, rng, layout, core, cold_cursor[0], profile.shared_words
                    )
                    emitted += 1  # migratory visits emit two references
                else:
                    emitted += emit_shared_access(
                        ops,
                        rng,
                        layout,
                        core,
                        _pick_group_size(profile, rng),
                        profile.shared_words,
                        profile.shared_write_fraction,
                        profile.shared_burst,
                    ) - 1
            elif roll < shared_roll + profile.cold_fraction:
                emit_streaming_access(
                    ops, layout, core, cold_cursor, profile.cold_region_lines
                )
            else:
                emit_hot_access(
                    ops,
                    rng,
                    layout,
                    core,
                    profile.hot_words,
                    write=rng.random() < profile.write_fraction,
                )
            if profile.lock_interval:
                since_lock += 1
                if since_lock >= profile.lock_interval:
                    since_lock = 0
                    emit_lock_section(
                        ops,
                        rng,
                        layout,
                        rng.randint(0, max(0, profile.locks - 1)),
                        profile.lock_spin_reads,
                        profile.lock_critical_ops,
                    )
        emit_barrier_episode(ops, layout, phase, profile.barrier_spin_reads)

    chunk = TraceChunk.from_ops(ops)
    _apply_blocking_fractions(chunk, rng, profile.load_block_fraction)
    return chunk


def _apply_blocking_fractions(
    chunk: TraceChunk, rng: DeterministicRng, block_fraction: float
) -> None:
    """Mark the profile's fraction of *private* loads as use-dependent.

    Shared-data, lock, and barrier loads stay blocking unconditionally:
    reads of shared structures feed immediate uses (pointer dereferences,
    flag tests), which is precisely why the paper's coherence misses sit on
    the critical path. Operates on the chunk columns in place; the rng
    draws occur in trace order, one per eligible private load — the exact
    sequence the per-op loop drew.
    """
    from repro.workloads.layout import SHARED_BASE

    kinds = chunk.kinds
    addresses = chunk.addresses
    blocking = chunk.blocking
    rng_random = rng.random
    for i, kind in enumerate(kinds):
        if kind == OP_LOAD and blocking[i] and addresses[i] < SHARED_BASE:
            blocking[i] = rng_random() < block_fraction


def iter_core_trace_chunks(
    profile: AppProfile,
    core: int,
    num_cores: int,
    memops: int,
    seed: int = 0,
    chunk_records: int = 8192,
):
    """Yield one core's trace as successive chunks of ``chunk_records`` ops.

    This is the recording seam: the trace recorder consumes these slices
    and the replay frontend streams them back through
    ``Core.run_trace(chunk_source=...)``. The underlying stream is the
    *same* :func:`build_core_trace` output — sliced, not re-generated —
    so a recorded trace is op-for-op identical to the live generator on
    every kernel and every protocol backend (the replay golden-digest
    tests lock this). Memory here is O(one core's trace); the written
    file is then replayable in O(chunk).
    """
    chunk = build_core_trace(profile, core, num_cores, memops, seed)
    total = len(chunk.kinds)
    for start in range(0, total, chunk_records):
        yield chunk.slice(start, min(start + chunk_records, total))
    if total == 0:
        yield TraceChunk()


#: Memoized machine traces. ``build_traces`` is pure and the harness calls
#: it twice per experiment point (once for Baseline, once for WiDir) with
#: identical arguments — synthesis was ~a quarter of end-to-end wall time in
#: the seed. :class:`~repro.workloads.profiles.AppProfile` is a frozen
#: dataclass, so the argument tuple is hashable; exotic unhashable profiles
#: (tests constructing ad-hoc objects) skip the cache.
_TRACE_CACHE: "OrderedDict[Tuple, List[TraceChunk]]" = OrderedDict()
_TRACE_CACHE_CAP = 8


def build_traces(
    profile: AppProfile,
    num_cores: int,
    memops_per_core: int,
    seed: int = 0,
) -> List[TraceChunk]:
    """Build the whole machine's traces (one chunk per core).

    Results are memoized on the (pure) argument tuple. Cached hits return
    a fresh *outer list*; the :class:`~repro.cpu.trace.TraceChunk` objects
    themselves are shared — the cores consume them strictly read-only
    (``blocking`` is finalized at synthesis time).
    """
    try:
        key = (profile, num_cores, memops_per_core, seed)
        cached = _TRACE_CACHE.get(key)
    except TypeError:  # unhashable ad-hoc profile: build uncached
        key = None
        cached = None
    if cached is not None:
        _TRACE_CACHE.move_to_end(key)
        return list(cached)
    traces = [
        build_core_trace(profile, core, num_cores, memops_per_core, seed)
        for core in range(num_cores)
    ]
    if key is not None:
        _TRACE_CACHE[key] = traces
        if len(_TRACE_CACHE) > _TRACE_CACHE_CAP:
            _TRACE_CACHE.popitem(last=False)
        return list(traces)
    return traces
