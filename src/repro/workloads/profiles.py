"""Per-application workload profiles.

One :class:`AppProfile` per paper application (Table IV lists the 20 apps and
their Baseline L1 MPKI). The knobs are calibrated so the *synthetic* app
reproduces the paper's characterization of the real one:

* ``paper_mpki`` (Table IV) is approached through the miss-producing knobs:
  ``cold_fraction`` (capacity misses from streaming) and the sharing knobs
  (coherence misses from invalidations);
* the Figure 5 sharer histogram is shaped by ``sharing_mix`` — how shared
  references spread over sharing-group sizes (at 64 cores, group sizes
  4/8/16/32/64 land in the paper's ≤5 / 6–10 / 11–25 / 26–49 / 50+ bins)
  plus lock/barrier traffic, which is always machine-wide;
* the Figure 8 behaviour (who speeds up) follows from how much of an app's
  miss traffic is *coherence* misses on widely shared lines (helped by
  WiDir) versus capacity misses (not helped).

The qualitative assignments follow the paper's narrative: *radiosity* is
dominated by machine-wide shared task queues (>90% of wireless writes update
50+ sharers); *ocean-nc*, *barnes*, *fmm*, *water-spa* have large sharer
counts; *blackscholes*, *bodytrack*, *dedup*, *ferret*, *freqmine* are
data-parallel with little fine-grain sharing and gain nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: (group_size, weight) pairs; weights need not sum to 1 (normalized on use).
SharingMix = Tuple[Tuple[int, float], ...]


@dataclass(frozen=True)
class AppProfile:
    """Statistical description of one application's memory behaviour."""

    name: str
    suite: str                      # "splash3" | "parsec"
    paper_mpki: float               # Table IV, Baseline L1 MPKI
    mem_ratio: float = 0.30         # memory references per instruction
    hot_words: int = 64             # private hot working set (words)
    cold_fraction: float = 0.01     # private refs that stream (always miss)
    cold_region_lines: int = 8192   # streaming region length (lines)
    shared_fraction: float = 0.10   # refs to shared data
    shared_words: int = 64          # words per sharing-group region
    shared_write_fraction: float = 0.25
    #: Consecutive accesses to the same shared word per visit: real shared
    #: data is read repeatedly between remote writes (temporal locality),
    #: which is what makes most shared references L1 hits in the paper's
    #: Table IV MPKI numbers.
    shared_burst: int = 3
    sharing_mix: SharingMix = ((8, 1.0),)
    migratory_fraction: float = 0.0  # shared refs that are migratory RMW-ish
    locks: int = 4                  # distinct global lock lines
    lock_interval: int = 0          # memops between lock sections (0 = none)
    lock_spin_reads: int = 3
    lock_critical_ops: int = 4
    phases: int = 4                 # barrier-separated program phases
    barrier_spin_reads: int = 3
    load_block_fraction: float = 0.7  # loads with a nearby dependent use
    write_fraction: float = 0.30    # private refs that are writes

    def sharing_weights(self) -> Dict[int, float]:
        total = sum(w for _, w in self.sharing_mix)
        if total <= 0:
            return {}
        return {size: w / total for size, w in self.sharing_mix}


def _app(name: str, suite: str, mpki: float, **kwargs) -> AppProfile:
    return AppProfile(name=name, suite=suite, paper_mpki=mpki, **kwargs)


#: The paper's 20 applications (Table IV), calibrated qualitatively.
APP_PROFILES: Dict[str, AppProfile] = {
    # ----------------------------------------------------------- SPLASH-3
    "water-spa": _app(
        "water-spa", "splash3", 0.49,
        mem_ratio=0.20, cold_fraction=0.0005, shared_fraction=0.10,
        shared_words=24, shared_write_fraction=0.20, shared_burst=3,
        sharing_mix=((64, 0.6), (16, 0.4)),
        locks=8, lock_interval=450, phases=6,
    ),
    "water-nsq": _app(
        "water-nsq", "splash3", 2.86,
        mem_ratio=0.22, cold_fraction=0.006, shared_fraction=0.08,
        shared_words=48, shared_write_fraction=0.08, shared_burst=3,
        sharing_mix=((16, 0.6), (8, 0.4)),
        locks=8, lock_interval=800, phases=6,
    ),
    "ocean-nc": _app(
        "ocean-nc", "splash3", 16.05,
        mem_ratio=0.28, cold_fraction=0.035, cold_region_lines=16384,
        shared_fraction=0.22, shared_words=24, shared_write_fraction=0.10,
        shared_burst=3, sharing_mix=((64, 0.55), (32, 0.30), (16, 0.15)),
        locks=4, lock_interval=600, phases=8,
    ),
    "volrend": _app(
        "volrend", "splash3", 2.44,
        mem_ratio=0.23, cold_fraction=0.005, shared_fraction=0.09,
        shared_words=48, shared_write_fraction=0.14, shared_burst=3,
        sharing_mix=((16, 0.5), (4, 0.5)),
        locks=12, lock_interval=700, phases=4,
    ),
    "radiosity": _app(
        "radiosity", "splash3", 5.28,
        mem_ratio=0.24, cold_fraction=0.004, shared_fraction=0.28,
        shared_words=16, shared_write_fraction=0.25, shared_burst=3,
        sharing_mix=((64, 0.92), (8, 0.08)),  # >90% of updates reach 50+
        locks=16, lock_interval=240, lock_spin_reads=4, phases=4,
    ),
    "raytrace": _app(
        "raytrace", "splash3", 10.05,
        mem_ratio=0.26, cold_fraction=0.020, shared_fraction=0.18,
        shared_words=24, shared_write_fraction=0.14, shared_burst=3,
        sharing_mix=((64, 0.6), (16, 0.3), (4, 0.1)),
        locks=16, lock_interval=280, phases=4,
    ),
    "cholesky": _app(
        "cholesky", "splash3", 5.92,
        mem_ratio=0.25, cold_fraction=0.013, shared_fraction=0.12,
        shared_words=64, shared_write_fraction=0.12, shared_burst=3,
        sharing_mix=((16, 0.4), (8, 0.4), (32, 0.2)),
        locks=8, lock_interval=420, phases=5,
    ),
    "fft": _app(
        "fft", "splash3", 5.05,
        mem_ratio=0.27, cold_fraction=0.012, cold_region_lines=16384,
        shared_fraction=0.13, shared_words=32, shared_write_fraction=0.11,
        shared_burst=3, sharing_mix=((32, 0.4), (64, 0.4), (16, 0.2)),
        phases=6, lock_interval=0,
    ),
    "lu-nc": _app(
        "lu-nc", "splash3", 21.52,
        mem_ratio=0.30, cold_fraction=0.050, cold_region_lines=32768,
        shared_fraction=0.11, shared_words=64, shared_write_fraction=0.14,
        shared_burst=3, sharing_mix=((8, 0.6), (32, 0.4)),
        phases=8, lock_interval=0, load_block_fraction=0.8,
    ),
    "lu-c": _app(
        "lu-c", "splash3", 1.90,
        mem_ratio=0.24, cold_fraction=0.003, shared_fraction=0.10,
        shared_words=64, shared_write_fraction=0.14, shared_burst=3,
        sharing_mix=((32, 0.5), (8, 0.5)),
        phases=8, lock_interval=0,
    ),
    "radix": _app(
        "radix", "splash3", 9.41,
        mem_ratio=0.28, cold_fraction=0.022, cold_region_lines=16384,
        shared_fraction=0.09, shared_words=48, shared_write_fraction=0.20,
        shared_burst=3, sharing_mix=((16, 0.5), (64, 0.25), (4, 0.25)),
        phases=6, lock_interval=0,
    ),
    "barnes": _app(
        "barnes", "splash3", 9.53,
        mem_ratio=0.26, cold_fraction=0.016, shared_fraction=0.26,
        shared_words=24, shared_write_fraction=0.13, shared_burst=3,
        sharing_mix=((64, 0.65), (16, 0.35)),
        locks=16, lock_interval=300, phases=5,
    ),
    "fmm": _app(
        "fmm", "splash3", 1.88,
        mem_ratio=0.22, cold_fraction=0.002, shared_fraction=0.15,
        shared_words=32, shared_write_fraction=0.12, shared_burst=3,
        sharing_mix=((64, 0.5), (32, 0.3), (8, 0.2)),
        locks=12, lock_interval=380, phases=5,
    ),
    # ------------------------------------------------------------- PARSEC
    "blackscholes": _app(
        "blackscholes", "parsec", 0.13,
        mem_ratio=0.18, cold_fraction=0.0002, shared_fraction=0.005,
        shared_words=64, shared_write_fraction=0.05, shared_burst=3,
        sharing_mix=((4, 1.0),),
        phases=2, lock_interval=0, load_block_fraction=0.5,
    ),
    "bodytrack": _app(
        "bodytrack", "parsec", 7.51,
        mem_ratio=0.26, cold_fraction=0.021, cold_region_lines=16384,
        shared_fraction=0.03, shared_words=96, shared_write_fraction=0.10,
        shared_burst=3, sharing_mix=((4, 0.7), (8, 0.3)),
        locks=6, lock_interval=800, phases=4, load_block_fraction=0.6,
    ),
    "canneal": _app(
        "canneal", "parsec", 23.21,
        mem_ratio=0.30, cold_fraction=0.058, cold_region_lines=65536,
        shared_fraction=0.09, shared_words=384, shared_write_fraction=0.12,
        shared_burst=2, sharing_mix=((8, 0.5), (2, 0.3), (32, 0.2)),
        migratory_fraction=0.3, phases=3, lock_interval=0,
        load_block_fraction=0.85,
    ),
    "dedup": _app(
        "dedup", "parsec", 4.10,
        mem_ratio=0.25, cold_fraction=0.011, shared_fraction=0.025,
        shared_words=96, shared_write_fraction=0.12, shared_burst=3,
        sharing_mix=((2, 0.6), (4, 0.4)),
        locks=8, lock_interval=700, phases=3, load_block_fraction=0.6,
    ),
    "fluidanimate": _app(
        "fluidanimate", "parsec", 1.27,
        mem_ratio=0.23, cold_fraction=0.002, shared_fraction=0.06,
        shared_words=128, shared_write_fraction=0.12, shared_burst=3,
        sharing_mix=((4, 0.6), (8, 0.4)),
        locks=24, lock_interval=450, phases=5,
    ),
    "ferret": _app(
        "ferret", "parsec", 6.34,
        mem_ratio=0.26, cold_fraction=0.017, shared_fraction=0.025,
        shared_words=96, shared_write_fraction=0.10, shared_burst=3,
        sharing_mix=((2, 0.5), (4, 0.5)),
        locks=8, lock_interval=800, phases=3, load_block_fraction=0.6,
    ),
    "freqmine": _app(
        "freqmine", "parsec", 8.84,
        mem_ratio=0.28, cold_fraction=0.024, cold_region_lines=32768,
        shared_fraction=0.02, shared_words=96, shared_write_fraction=0.10,
        shared_burst=3, sharing_mix=((4, 0.7), (8, 0.3)),
        phases=3, lock_interval=0, load_block_fraction=0.65,
    ),
}

#: Stable presentation order (paper tables list SPLASH-3 first).
ALL_APPS: Tuple[str, ...] = tuple(APP_PROFILES)
