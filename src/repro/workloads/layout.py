"""Address-space geometry for synthetic workloads.

All generators draw addresses through this class so regions can never
overlap and tests can reason about which region an address belongs to.
Word granularity is 8 bytes (the wireless update unit).
"""

from __future__ import annotations

WORD = 8
LINE = 64

#: Region bases (generous gaps; the backing store is sparse).
PRIVATE_BASE = 0x1000_0000
PRIVATE_SPAN = 0x0010_0000       # 1 MiB of private address space per core
COLD_OFFSET = 0x0008_0000        # streaming region inside the private span
SHARED_BASE = 0x4000_0000
SHARED_GROUP_SPAN = 0x0004_0000  # per sharing-group region
LOCK_BASE = 0x7000_0000
BARRIER_BASE = 0x7800_0000

#: L1-set skew per region. Region bases are large powers of two, so without
#: a skew every region's first lines land in L1 sets 0..7 and fight for the
#: same two ways — an artificial conflict-thrash no real allocator produces.
#: Offsetting each region into a different band of a 512-set L1 keeps the
#: hot set, shared data, locks, and barriers in disjoint conflict domains.
SHARED_SET_SKEW = 128 * LINE
LOCK_SET_SKEW = 256 * LINE
BARRIER_SET_SKEW = 384 * LINE


class AddressLayout:
    """Computes the fixed addresses used by the pattern emitters."""

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores

    def private_hot(self, core: int, index: int) -> int:
        """``index``-th word of the core's hot working set."""
        return PRIVATE_BASE + core * PRIVATE_SPAN + index * WORD

    def private_cold(self, core: int, line_index: int) -> int:
        """``line_index``-th line of the core's streaming (cold) region."""
        return (
            PRIVATE_BASE + core * PRIVATE_SPAN + COLD_OFFSET + line_index * LINE
        )

    def shared_word(self, group_size: int, group_id: int, index: int) -> int:
        """A word in the region shared by one group of ``group_size`` cores.

        Groups of different sizes live in disjoint regions (keyed by the
        size), so an application mixing 8-way and 64-way sharing touches
        distinct lines for each.
        """
        region = SHARED_BASE + group_size * 0x0100_0000 + group_id * SHARED_GROUP_SPAN
        return region + SHARED_SET_SKEW + index * WORD

    def lock(self, lock_id: int) -> int:
        """A globally shared lock word (its own line).

        Locks are spaced two lines apart: the word after the lock's line
        (see :meth:`lock_data`) holds the data it guards. Padding them onto
        separate lines mirrors real tuned code and keeps critical-section
        stores from cancelling other cores' in-flight lock RMWs (the
        wireless RMW monitor watches the lock's *line*).
        """
        return LOCK_BASE + LOCK_SET_SKEW + lock_id * 2 * LINE

    def lock_data(self, lock_id: int, index: int) -> int:
        """A word of the data guarded by ``lock_id`` (the line after it)."""
        return self.lock(lock_id) + LINE + (index % 8) * WORD

    def barrier_word(self, phase: int) -> int:
        """The barrier counter word for one program phase (its own line)."""
        return BARRIER_BASE + BARRIER_SET_SKEW + phase * LINE

    def group_of(self, core: int, group_size: int) -> int:
        """Which sharing group a core belongs to for a given group size."""
        size = min(group_size, self.num_cores)
        return core // size
