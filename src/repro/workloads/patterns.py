"""Reusable access-pattern emitters.

Each emitter appends :class:`~repro.cpu.trace.TraceOp` items to a list,
modelling one archetypal sharing behaviour from the coherence literature:

* **hot-set** — repeated references to a small private working set (hits);
* **streaming** — a sequential walk over a region far larger than the L1
  (pure capacity misses, read-mostly);
* **group read/write sharing** — the pattern the paper targets: a group of
  cores frequently reading and occasionally writing the same lines;
* **migratory** — one core at a time read-modify-writes a datum, then the
  next core takes over;
* **lock section** — test-and-test-and-set acquire (spin loads + RMW),
  a short critical section, and a releasing store;
* **barrier episode** — an RMW on the barrier counter, spin loads on it,
  and the cross-core alignment op.

The emitters take a :class:`~repro.engine.rng.DeterministicRng` so a trace
is a pure function of (profile, config, seed).
"""

from __future__ import annotations

from typing import List

from repro.cpu import trace as t
from repro.engine.rng import DeterministicRng
from repro.workloads.layout import AddressLayout


def emit_think(ops: List[t.TraceOp], rng: DeterministicRng, mean_instructions: int) -> None:
    """A burst of non-memory instructions between references."""
    if mean_instructions <= 0:
        return
    ops.append(t.think(rng.geometric(float(mean_instructions))))


def emit_hot_access(
    ops: List[t.TraceOp],
    rng: DeterministicRng,
    layout: AddressLayout,
    core: int,
    hot_words: int,
    write: bool,
) -> None:
    """One reference into the core's private hot set (expected L1 hit)."""
    address = layout.private_hot(core, rng.randint(0, max(0, hot_words - 1)))
    if write:
        ops.append(t.store(address, rng.randint(0, 1 << 30)))
    else:
        ops.append(t.load(address))


def emit_streaming_access(
    ops: List[t.TraceOp],
    layout: AddressLayout,
    core: int,
    cursor: List[int],
    region_lines: int,
    write: bool = False,
) -> None:
    """One reference of a sequential walk (expected L1 capacity miss).

    ``cursor`` is a single-element list carrying the walk position across
    calls; stepping a full line each time defeats spatial reuse, which is
    what makes every reference a miss once the region exceeds the L1.
    """
    address = layout.private_cold(core, cursor[0] % region_lines)
    cursor[0] += 1
    if write:
        ops.append(t.store(address, cursor[0]))
    else:
        # Streaming loads are prefetch-friendly: model as non-blocking.
        ops.append(t.load(address, blocking=False))


def emit_shared_access(
    ops: List[t.TraceOp],
    rng: DeterministicRng,
    layout: AddressLayout,
    core: int,
    group_size: int,
    shared_words: int,
    write_fraction: float,
    burst: int = 1,
) -> int:
    """A visit to data shared by this core's group (the WiDir pattern).

    Emits ``burst`` consecutive references to the same shared word — mostly
    reads, with at most one write per visit — modelling the read-dominant
    reuse between remote writes that shared data exhibits in practice.
    Returns the number of references emitted.
    """
    size = min(group_size, layout.num_cores)
    group_id = layout.group_of(core, size)
    address = layout.shared_word(
        size, group_id, rng.randint(0, max(0, shared_words - 1))
    )
    count = max(1, burst)
    # Per-sharer write intensity scales inversely with the group size: a
    # variable shared machine-wide is written proportionally less often by
    # each sharer (or it would not stay shared). ``write_fraction`` is the
    # group-of-8 value; wider groups write less, narrower ones more.
    effective_write = min(0.5, write_fraction * 8.0 / size)
    write_at = count - 1 if rng.random() < effective_write else -1
    for i in range(count):
        if i == write_at:
            ops.append(t.store(address, rng.randint(0, 1 << 30)))
        else:
            ops.append(t.load(address))
    return count


def emit_migratory_access(
    ops: List[t.TraceOp],
    rng: DeterministicRng,
    layout: AddressLayout,
    core: int,
    token: int,
    shared_words: int,
) -> None:
    """Read-modify-write of a migratory datum (exclusive ping-ponging)."""
    # Migratory data is modelled as pairwise-shared lines indexed by a
    # token that advances with program progress, so ownership migrates.
    address = layout.shared_word(2, token % 8, rng.randint(0, max(0, shared_words - 1)))
    ops.append(t.load(address))
    ops.append(t.store(address, token))


def emit_lock_section(
    ops: List[t.TraceOp],
    rng: DeterministicRng,
    layout: AddressLayout,
    lock_id: int,
    spin_reads: int,
    critical_ops: int,
) -> None:
    """Test-and-test-and-set acquire, critical section, release.

    The spin loads put the lock line into wide read-sharing — at high core
    counts this is the canonical source of the paper's 50+-sharers bin.
    """
    lock_address = layout.lock(lock_id)
    for _ in range(spin_reads):
        ops.append(t.load(lock_address))
    ops.append(t.rmw(lock_address))
    # Critical section: touch the data the lock guards (its own line, so
    # these stores do not collide with other cores' lock acquisitions).
    for i in range(critical_ops):
        address = layout.lock_data(lock_id, i)
        if rng.random() < 0.5:
            ops.append(t.load(address))
        else:
            ops.append(t.store(address, rng.randint(0, 1 << 20)))
    ops.append(t.store(lock_address, 0))  # release


def emit_barrier_episode(
    ops: List[t.TraceOp],
    layout: AddressLayout,
    phase: int,
    spin_reads: int,
) -> None:
    """Arrive at a barrier: bump the counter, spin on it, then align."""
    barrier_address = layout.barrier_word(phase)
    ops.append(t.rmw(barrier_address))
    for _ in range(spin_reads):
        ops.append(t.load(barrier_address))
    ops.append(t.barrier(phase))
