"""Command-line interface.

``python -m repro <noun> <verb>`` exposes the harness without writing any
Python. Commands follow a consistent noun-verb scheme:

==================  ======================================================
sim run             run one app on one machine, print the headline metrics
sim compare         run Baseline and WiDir on the same traces, print ratio
sim profile         cProfile one in-process run; write a pstats report
figure render       regenerate a paper artifact (fig5..fig10, table4..
                    table6, motivation) and print its table
apps list           list the 20 application profiles and their calibration
verify run          protocol verification campaign (litmus + fuzzing)
verify replay       re-execute a failure artifact (see docs/TESTING.md)
trace run           run one app with observability enabled; export traces
trace export        re-export a saved capture (chrome or text timeline)
trace summarize     span/latency statistics of a saved capture
traces record       record an app's reference stream to a trace file
traces convert      convert an external CSV op listing to the trace format
traces info         print a trace file's header/index summary
traces validate     full-scan integrity check (decompress + CRC all chunks)
traces replay       replay a recorded trace (optionally snapshot/resume)
campaign run        start a fault-tolerant, checkpointed sweep campaign
campaign resume     resume an interrupted/degraded campaign where it died
campaign status     inspect a campaign's journal (progress, retries)
campaign render     render a figure from a campaign's (possibly partial)
                    results
campaign serve      drive a campaign over distributed workers (local
                    forks and/or remote ``campaign worker`` agents)
campaign worker     join a running coordinator and execute leases
campaign submit     push pending runs into a running coordinator
==================  ======================================================

The ``trace`` noun is the *observability* layer (captures, timelines);
the ``traces`` noun is the *recorded-trace* subsystem (the canonical
chunked/compressed file format of :mod:`repro.traces`). The old
single-word spellings (``repro run``, ``repro compare``, ``repro
figure``, ``repro apps``, ``repro profile``, bare ``repro verify``) and
the singular ``repro trace record/convert/info/validate/replay``
spellings still work for one release as hidden aliases that print a
deprecation notice to stderr. Shared options are declared once on parent
parsers: ``--workers``/``--no-cache`` (execution), ``--cores``/
``--memops``/``--seed`` (machine), ``--out`` (output path).

Simulations execute through :mod:`repro.harness.executor` (dedup +
on-disk memoization, ``REPRO_CACHE_DIR``, ``--no-cache``, ``--workers``);
campaigns add the fault-tolerant supervisor + crash-safe checkpoints of
:mod:`repro.harness.campaign`. See docs/API.md and docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.coherence.backend import backend_names
from repro.config.presets import protocol_config
from repro.harness import figures as figure_functions
from repro.harness.executor import Executor
from repro.harness.motivation import section2c_sharing_probe
from repro.harness.results_io import result_to_dict
from repro.wireless.mac import mac_names
from repro.workloads.profiles import ALL_APPS, APP_PROFILES

FIGURES = {
    "motivation": lambda **kw: section2c_sharing_probe(
        apps=list(kw["apps"]), num_cores=kw["cores"], memops=kw["memops"]
    ),
    "table4": lambda **kw: figure_functions.table4_mpki_characterization(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "fig5": lambda **kw: figure_functions.figure5_sharer_histogram(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "fig6": lambda **kw: figure_functions.figure6_mpki(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "fig7": lambda **kw: figure_functions.figure7_memory_latency(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "table5": lambda **kw: figure_functions.table5_hop_distribution(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "fig8": lambda **kw: figure_functions.figure8_execution_time(
        apps=kw["apps"], memops=kw["memops"], executor=kw["executor"]
    ),
    "fig9": lambda **kw: figure_functions.figure9_energy(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "fig10": lambda **kw: figure_functions.figure10_scalability(
        apps=kw["apps"], memops=kw["memops"], executor=kw["executor"]
    ),
    "table6": lambda **kw: figure_functions.table6_sensitivity(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "protocols": lambda **kw: figure_functions.figure_protocol_comparison(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"], protocols=kw.get("protocols"),
        seed=kw.get("seed", 42),
    ),
    "macs": lambda **kw: figure_functions.figure_mac_comparison(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"], protocols=kw.get("protocols"),
        macs=kw.get("macs"), seed=kw.get("seed", 42),
    ),
}

#: Every canonical ``(noun, verb)`` command path; the CLI contract tests
#: snapshot ``--help`` for each of these (plus the root parser).
CLI_COMMANDS: Tuple[Tuple[str, ...], ...] = (
    ("sim", "run"),
    ("sim", "compare"),
    ("sim", "profile"),
    ("figure", "render"),
    ("apps", "list"),
    ("verify", "run"),
    ("verify", "replay"),
    ("trace", "run"),
    ("trace", "export"),
    ("trace", "summarize"),
    ("traces", "record"),
    ("traces", "convert"),
    ("traces", "info"),
    ("traces", "validate"),
    ("traces", "replay"),
    ("campaign", "run"),
    ("campaign", "resume"),
    ("campaign", "status"),
    ("campaign", "render"),
    ("campaign", "serve"),
    ("campaign", "worker"),
    ("campaign", "submit"),
)

#: Old spelling -> new spelling, for the deprecation notices.
DEPRECATED_ALIASES = {
    "run": "sim run",
    "compare": "sim compare",
    "profile": "sim profile",
    "figure": "figure render",
    "apps": "apps list",
    "verify": "verify run",
    # The recorded-trace verbs briefly shipped under the singular noun;
    # they now live on `traces` (the `trace` noun is the obs layer).
    "trace record": "traces record",
    "trace convert": "traces convert",
    "trace info": "traces info",
    "trace validate": "traces validate",
    "trace replay": "traces replay",
}


# -------------------------------------------------------- parent parsers


def _execution_parent() -> argparse.ArgumentParser:
    """Shared ``--workers`` / ``--no-cache`` (declared once, used by every
    simulating subcommand)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution")
    group.add_argument(
        "--workers",
        type=int,
        default=None,
        help="simulation worker processes (default: REPRO_WORKERS or CPU "
        "count; 1 forces the deterministic serial path)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache (REPRO_CACHE_DIR) and "
        "re-simulate every run",
    )
    return parent


def _machine_parent(
    cores: int = 16, memops: int = 800, seed: int = 42
) -> argparse.ArgumentParser:
    """Shared ``--cores`` / ``--memops`` / ``--seed`` machine options."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("machine")
    group.add_argument("--cores", type=int, default=cores, help="core count")
    group.add_argument(
        "--memops", type=int, default=memops,
        help="memory references per core",
    )
    group.add_argument("--seed", type=int, default=seed, help="machine seed")
    return parent


def _out_parent(default: Optional[str], help_text: str) -> argparse.ArgumentParser:
    """Shared ``--out`` output-path option."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--out", default=default, help=help_text)
    return parent


def _add_mac_option(parser: argparse.ArgumentParser) -> None:
    """``--mac``: wireless MAC backend (ignored by wired protocols)."""
    parser.add_argument(
        "--mac",
        choices=mac_names(),
        default="brs",
        help="wireless MAC backend (wired protocols ignore it; see "
        "repro apps list --macs)",
    )


def _config_with_mac(config, mac: str):
    """Apply ``--mac`` to a preset config; no-op for the default MAC."""
    from dataclasses import replace

    return config if mac == config.mac else replace(config, mac=mac)


def _executor_from(args: argparse.Namespace) -> Executor:
    return Executor(
        workers=args.workers, use_cache=False if args.no_cache else None
    )


# ------------------------------------------------- subcommand definitions


def _configure_sim_run(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", choices=ALL_APPS)
    parser.add_argument(
        "--protocol", choices=backend_names(), default="widir"
    )
    _add_mac_option(parser)
    parser.add_argument("--json", action="store_true", help="emit JSON")


def _configure_sim_compare(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", choices=ALL_APPS)


def _configure_sim_profile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", choices=ALL_APPS)
    parser.add_argument(
        "--protocol", choices=backend_names(), default="widir"
    )
    _add_mac_option(parser)
    parser.add_argument(
        "--trace-seed", type=int, default=7, help="workload trace seed"
    )
    parser.add_argument(
        "--sort",
        choices=("tottime", "cumulative"),
        default="tottime",
        help="pstats sort key (default: tottime)",
    )
    parser.add_argument(
        "--top", type=int, default=25, help="number of pstats rows to keep"
    )
    parser.add_argument(
        "--cold",
        action="store_true",
        help="skip the warm-up run (include trace synthesis and import "
        "effects in the profile)",
    )
    parser.add_argument(
        "--batched",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force the cohort (batched) event kernel on or off for the "
        "profiled run; default: the process-wide kernel choice "
        "(REPRO_BATCHED_KERNEL, on unless set falsy)",
    )
    # Old spelling of --out; kept working but hidden from help.
    parser.add_argument(
        "--output", dest="out", default=None, help=argparse.SUPPRESS
    )


def _configure_figure_render(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("name", choices=sorted(FIGURES))
    parser.add_argument(
        "--apps", default="radiosity,water-spa,blackscholes",
        help="comma-separated app list, or 'all'",
    )


def _configure_verify_opts(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--campaign", default="smoke", help="campaign name (smoke, deep)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign root seed"
    )
    parser.add_argument(
        "--trials", type=int, default=None, help="override the trial count"
    )
    parser.add_argument(
        "--mutate",
        default=None,
        help="apply a seeded protocol mutation to every WiDir trial "
        "(mutation smoke testing; the campaign must fail)",
    )
    parser.add_argument(
        "--litmus-schedules",
        type=int,
        default=6,
        help="issue schedules per litmus (test, config) pair",
    )
    parser.add_argument(
        "--skip-litmus", action="store_true", help="fuzz trials only"
    )
    parser.add_argument(
        "--artifact-dir",
        default="verify-artifacts",
        help="where failing trials are archived as replayable JSON",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="archive failing trials without the delta-debugging pass",
    )


def _configure_trace_run(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--app", choices=ALL_APPS, default="radiosity", help="application"
    )
    parser.add_argument(
        "--preset", choices=backend_names(), default="widir"
    )
    _add_mac_option(parser)
    parser.add_argument(
        "--trace-seed", type=int, default=0, help="workload trace seed"
    )
    parser.add_argument(
        "--sample-interval",
        type=int,
        default=None,
        help="counter sampling interval in cycles (default: ObsConfig)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=None,
        help="flight-recorder ring depth per node (default: ObsConfig)",
    )
    parser.add_argument(
        "--capture",
        default=None,
        help="also save the raw capture JSON (re-exportable offline)",
    )
    parser.add_argument(
        "--timeline", action="store_true", help="print the text timeline too"
    )
    parser.add_argument(
        "--limit", type=int, default=40, help="timeline rows to print"
    )


def _configure_traces_record(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", choices=ALL_APPS)
    parser.add_argument(
        "--trace-seed", type=int, default=0, help="workload trace seed"
    )
    parser.add_argument(
        "--chunk-records",
        type=int,
        default=None,
        help="records per compressed chunk (default: format default)",
    )
    parser.add_argument(
        "--codec",
        choices=("zstd", "zlib"),
        default=None,
        help="chunk codec (default: zstd when available, else zlib)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")


def _configure_traces_convert(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("src", help="CSV/text op listing to convert")
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        help="core count (default: max core id in the input + 1)",
    )
    parser.add_argument(
        "--app", default="imported", help="app name stored in the header"
    )
    parser.add_argument(
        "--chunk-records",
        type=int,
        default=None,
        help="records per compressed chunk (default: format default)",
    )
    parser.add_argument(
        "--codec",
        choices=("zstd", "zlib"),
        default=None,
        help="chunk codec (default: zstd when available, else zlib)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")


def _configure_traces_info(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", help="trace file to summarize")
    parser.add_argument("--json", action="store_true", help="emit JSON")


def _configure_traces_validate(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", help="trace file to scan")
    parser.add_argument("--json", action="store_true", help="emit JSON")


def _configure_traces_replay(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", help="trace file to replay")
    parser.add_argument(
        "--protocol", choices=backend_names(), default="widir"
    )
    parser.add_argument("--seed", type=int, default=42, help="machine seed")
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        help="segment the replay with a machine snapshot roughly every N "
        "chunks per core (0: continuous, digest-identical to the live run)",
    )
    parser.add_argument(
        "--snapshot-path",
        default=None,
        help="durable snapshot file: a killed replay resumes from it with "
        "a byte-identical final digest (removed after a completed run)",
    )
    parser.add_argument(
        "--expect-trace-id",
        default="",
        help="fail unless the file's content digest matches",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")


def _configure_campaign_common(parser: argparse.ArgumentParser) -> None:
    """Supervision knobs shared by ``campaign run`` and ``campaign resume``."""
    group = parser.add_argument_group("supervision")
    group.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-run wall-clock budget in seconds (default: unlimited)",
    )
    group.add_argument(
        "--retries",
        type=int,
        default=3,
        help="attempts per run before giving up and degrading (default 3)",
    )
    group.add_argument(
        "--backoff-seed", type=int, default=0,
        help="seed of the retry-backoff RNG",
    )
    group.add_argument(
        "--backoff-unit",
        type=float,
        default=0.05,
        help="seconds per backoff cycle (0 retries instantly; default 0.05)",
    )
    group.add_argument(
        "--inject",
        default=None,
        help="seeded fault injection for drills, e.g. 'crash=0.2,hang=0.1' "
        "(kinds: crash, hang, stall, error)",
    )
    group.add_argument(
        "--inject-seed", type=int, default=0, help="fault-injection seed"
    )
    group.add_argument(
        "--trace-out",
        default=None,
        help="write campaign retry spans as a Chrome trace JSON",
    )


def _configure_campaign_run(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--name", default=None,
        help="campaign name (default: the --out directory name)",
    )
    parser.add_argument(
        "--sweep",
        choices=("protocols", "thresholds", "trace"),
        default="protocols",
        help="run matrix: Baseline-vs-WiDir pairs, a MaxWiredSharers "
        "threshold sweep, or barrier-safe shards of one recorded trace",
    )
    parser.add_argument(
        "--apps", default=None,
        help="comma-separated app list, or 'all' (required unless "
        "--sweep trace)",
    )
    parser.add_argument(
        "--thresholds", default="2,3,4,5",
        help="MaxWiredSharers values for --sweep thresholds",
    )
    parser.add_argument(
        "--protocols", default="baseline,widir",
        help="comma-separated backend names for --sweep protocols, or "
        "'all' (see repro apps list --protocols)",
    )
    parser.add_argument(
        "--macs", default="brs",
        help="comma-separated wireless MAC backends to cross with every "
        "wireless protocol, or 'all' (see repro apps list --macs)",
    )
    parser.add_argument(
        "--trace-seed", type=int, default=0, help="workload trace seed"
    )
    parser.add_argument(
        "--trace-path", default=None,
        help="recorded trace file for --sweep trace",
    )
    parser.add_argument(
        "--trace-shards", type=int, default=0,
        help="shard-window count for --sweep trace (<= 1: whole trace)",
    )
    _configure_campaign_common(parser)


def _configure_campaign_resume(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dir", help="campaign directory to resume")
    _configure_campaign_common(parser)


def _configure_campaign_status(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "dir",
        nargs="?",
        default=None,
        help="campaign directory to inspect (optional with --connect)",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="query a running coordinator for live per-shard progress",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="auto-discover the coordinator advertised in DIR and query it",
    )


def _configure_campaign_serve(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--name", default=None,
        help="campaign name (default: the --out directory name)",
    )
    parser.add_argument(
        "--sweep",
        choices=("protocols", "thresholds", "trace"),
        default="protocols",
        help="run matrix: Baseline-vs-WiDir pairs, a MaxWiredSharers "
        "threshold sweep, or barrier-safe shards of one recorded trace",
    )
    parser.add_argument(
        "--apps",
        default=None,
        help="comma-separated app list, or 'all' (omit to resume an "
        "existing campaign directory)",
    )
    parser.add_argument(
        "--thresholds", default="2,3,4,5",
        help="MaxWiredSharers values for --sweep thresholds",
    )
    parser.add_argument(
        "--protocols", default="baseline,widir",
        help="comma-separated backend names for --sweep protocols, or "
        "'all' (see repro apps list --protocols)",
    )
    parser.add_argument(
        "--macs", default="brs",
        help="comma-separated wireless MAC backends to cross with every "
        "wireless protocol, or 'all' (see repro apps list --macs)",
    )
    parser.add_argument(
        "--trace-seed", type=int, default=0, help="workload trace seed"
    )
    parser.add_argument(
        "--trace-path", default=None,
        help="recorded trace file for --sweep trace",
    )
    parser.add_argument(
        "--trace-shards", type=int, default=0,
        help="shard-window count for --sweep trace (<= 1: whole trace)",
    )
    group = parser.add_argument_group("distributed")
    group.add_argument(
        "--host", default="127.0.0.1", help="coordinator bind address"
    )
    group.add_argument(
        "--port", type=int, default=0,
        help="coordinator TCP port (0 picks a free port)",
    )
    group.add_argument(
        "--shards",
        type=int,
        default=None,
        help="journal shard count (default: 2x workers, so steals occur)",
    )
    group.add_argument(
        "--lease-timeout",
        type=float,
        default=120.0,
        help="seconds before an unacknowledged lease is requeued",
    )
    group.add_argument(
        "--store",
        default=None,
        help="content-addressed result-store directory (multi-tenant "
        "cross-campaign dedup)",
    )
    group.add_argument(
        "--tenant", default="default", help="result-store tenant name"
    )
    group.add_argument(
        "--runner",
        choices=("sim", "sleep"),
        default="sim",
        help="what workers execute: real simulations, or deterministic "
        "sleeps (orchestration benchmarking)",
    )
    group.add_argument(
        "--runner-seconds",
        type=float,
        default=0.0,
        help="per-run sleep for --runner sleep",
    )
    group.add_argument(
        "--chaos-kill-after",
        type=int,
        default=None,
        help="SIGKILL one busy local worker after N results (fault drill)",
    )
    supervision = parser.add_argument_group("supervision")
    supervision.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="campaign wall-clock budget in seconds (default: unlimited)",
    )
    supervision.add_argument(
        "--retries",
        type=int,
        default=3,
        help="attempts per run before giving up and degrading (default 3)",
    )
    supervision.add_argument(
        "--backoff-seed", type=int, default=0,
        help="seed of the retry-backoff RNG",
    )
    supervision.add_argument(
        "--trace-out",
        default=None,
        help="write lease/steal spans as a Chrome trace JSON",
    )


def _configure_campaign_worker(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator endpoint to join",
    )
    parser.add_argument(
        "--name", default="", help="worker name shown in status/telemetry"
    )


def _configure_campaign_submit(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "dir",
        nargs="?",
        default=None,
        help="campaign directory whose advertised coordinator to use "
        "(optional with --connect)",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="coordinator endpoint to submit to",
    )
    parser.add_argument(
        "--keys",
        default=None,
        help="comma-separated run keys to enqueue (default: every pending "
        "run in the plan)",
    )
    parser.add_argument(
        "--wait",
        type=float,
        default=10.0,
        help="seconds to keep retrying while the coordinator throttles "
        "submissions (429)",
    )


def _configure_campaign_render(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dir", help="campaign directory to render from")
    parser.add_argument(
        "--figure",
        choices=sorted(name for name in FIGURES if name != "motivation"),
        required=True,
        help="paper artifact to render from the campaign's results",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail instead of rendering partial output when runs are "
        "missing",
    )


# ---------------------------------------------------------- parser build


def build_parser() -> argparse.ArgumentParser:
    """The full CLI parser (exposed for the contract tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiDir (HPCA 2021) reproduction harness",
    )
    nouns = parser.add_subparsers(
        dest="command",
        required=True,
        metavar="{sim,figure,apps,verify,trace,traces,campaign}",
    )
    execution = _execution_parent()

    # ---- sim -----------------------------------------------------------
    sim = nouns.add_parser("sim", help="run simulations")
    sim_verbs = sim.add_subparsers(dest="verb", required=True)
    sim_run = sim_verbs.add_parser(
        "run",
        help="run one application",
        parents=[_machine_parent(), execution],
    )
    _configure_sim_run(sim_run)
    sim_compare = sim_verbs.add_parser(
        "compare",
        help="Baseline vs WiDir on the same traces",
        parents=[_machine_parent(), execution],
    )
    _configure_sim_compare(sim_compare)
    sim_profile = sim_verbs.add_parser(
        "profile",
        help="cProfile one in-process simulation; write a pstats report",
        parents=[
            _machine_parent(cores=64),
            _out_parent(
                None,
                "report path ('-' for stdout only; default "
                "docs/profiles/<app>-<protocol>-<cores>c.txt)",
            ),
        ],
    )
    _configure_sim_profile(sim_profile)

    # ---- figure --------------------------------------------------------
    figure = nouns.add_parser("figure", help="regenerate paper artifacts")
    figure_verbs = figure.add_subparsers(dest="verb", required=True)
    figure_render = figure_verbs.add_parser(
        "render",
        help="regenerate a paper artifact and print its table",
        parents=[_machine_parent(), execution],
    )
    _configure_figure_render(figure_render)

    # ---- apps ----------------------------------------------------------
    apps = nouns.add_parser("apps", help="application profiles")
    apps_verbs = apps.add_subparsers(dest="verb", required=True)
    apps_list = apps_verbs.add_parser(
        "list", help="list the 20 application profiles"
    )
    apps_list.add_argument(
        "--protocols",
        action="store_true",
        help="list the registered coherence-protocol backends instead",
    )
    apps_list.add_argument(
        "--macs",
        action="store_true",
        help="list the registered wireless MAC backends instead",
    )

    # ---- verify --------------------------------------------------------
    verify = nouns.add_parser(
        "verify", help="protocol verification campaigns"
    )
    verify_verbs = verify.add_subparsers(dest="verb")
    verify_run = verify_verbs.add_parser(
        "run", help="run a verification campaign (litmus + fuzzing)"
    )
    _configure_verify_opts(verify_run)
    replay = verify_verbs.add_parser(
        "replay", help="re-execute a failure artifact"
    )
    replay.add_argument("artifact", help="path to the artifact JSON")
    # Old spelling: bare `repro verify --campaign ...` (no verb).
    _configure_verify_opts(verify)

    # ---- trace ---------------------------------------------------------
    trace = nouns.add_parser(
        "trace", help="record / export / summarize observability captures"
    )
    trace_verbs = trace.add_subparsers(dest="verb", required=True)
    trace_run = trace_verbs.add_parser(
        "run",
        help="run one app with tracing enabled and export a trace",
        parents=[
            _machine_parent(),
            _out_parent("trace.json", "Chrome/Perfetto trace output path"),
        ],
    )
    _configure_trace_run(trace_run)
    trace_export = trace_verbs.add_parser(
        "export",
        help="re-export a saved capture JSON",
        parents=[
            _out_parent(
                None,
                "output path (default: trace.json for chrome, stdout for "
                "text)",
            )
        ],
    )
    trace_export.add_argument("capture", help="path to a saved capture JSON")
    trace_export.add_argument(
        "--format", choices=("chrome", "text"), default="chrome"
    )
    trace_export.add_argument(
        "--limit", type=int, default=None, help="text-timeline row cap"
    )
    trace_summarize = trace_verbs.add_parser(
        "summarize", help="print span/latency statistics of a saved capture"
    )
    trace_summarize.add_argument("capture", help="path to a saved capture JSON")
    trace_summarize.add_argument(
        "--timeline", action="store_true", help="print the text timeline too"
    )
    trace_summarize.add_argument(
        "--limit", type=int, default=40, help="timeline rows to print"
    )

    # ---- traces (recorded-trace subsystem; distinct from obs `trace`) --
    traces = nouns.add_parser(
        "traces",
        help="record / convert / inspect / replay canonical trace files",
    )
    traces_verbs = traces.add_subparsers(dest="verb", required=True)
    traces_record = traces_verbs.add_parser(
        "record",
        help="record an app's reference stream into a trace file",
        parents=[
            _machine_parent(),
            _out_parent(None, "trace output path (required)"),
        ],
    )
    _configure_traces_record(traces_record)
    traces_convert = traces_verbs.add_parser(
        "convert",
        help="convert an external CSV op listing into the trace format",
        parents=[_out_parent(None, "trace output path (required)")],
    )
    _configure_traces_convert(traces_convert)
    traces_info = traces_verbs.add_parser(
        "info", help="print a trace file's header/index summary"
    )
    _configure_traces_info(traces_info)
    traces_validate = traces_verbs.add_parser(
        "validate",
        help="full-scan integrity check (decompress + CRC every chunk)",
    )
    _configure_traces_validate(traces_validate)
    traces_replay = traces_verbs.add_parser(
        "replay",
        help="replay a recorded trace through the full machine",
    )
    _configure_traces_replay(traces_replay)

    # ---- campaign ------------------------------------------------------
    campaign = nouns.add_parser(
        "campaign",
        help="fault-tolerant, crash-safe-resumable sweep campaigns",
    )
    campaign_verbs = campaign.add_subparsers(dest="verb", required=True)
    campaign_run = campaign_verbs.add_parser(
        "run",
        help="start a checkpointed campaign (resumable with `campaign "
        "resume`)",
        parents=[
            _machine_parent(),
            execution,
            _out_parent(None, "campaign directory (required)"),
        ],
    )
    _configure_campaign_run(campaign_run)
    campaign_resume = campaign_verbs.add_parser(
        "resume",
        help="resume an interrupted or degraded campaign where it died",
        parents=[execution],
    )
    _configure_campaign_resume(campaign_resume)
    campaign_status = campaign_verbs.add_parser(
        "status", help="inspect a campaign's checkpoint journal"
    )
    _configure_campaign_status(campaign_status)
    campaign_render = campaign_verbs.add_parser(
        "render",
        help="render a paper figure from a campaign's (partial) results",
    )
    _configure_campaign_render(campaign_render)
    campaign_serve = campaign_verbs.add_parser(
        "serve",
        help="drive a campaign over distributed workers (work-stealing "
        "coordinator; local forks and/or remote `campaign worker` agents)",
        parents=[
            _machine_parent(),
            execution,
            _out_parent(None, "campaign directory (required)"),
        ],
    )
    _configure_campaign_serve(campaign_serve)
    campaign_worker = campaign_verbs.add_parser(
        "worker",
        help="join a running coordinator and execute leased runs",
    )
    _configure_campaign_worker(campaign_worker)
    campaign_submit = campaign_verbs.add_parser(
        "submit",
        help="push pending runs into a running coordinator (rate-limited)",
    )
    _configure_campaign_submit(campaign_submit)

    # ---- hidden deprecated aliases ------------------------------------
    legacy_run = nouns.add_parser(
        "run", parents=[_machine_parent(), execution]
    )
    _configure_sim_run(legacy_run)
    legacy_run.set_defaults(command="sim", verb="run", _deprecated="run")
    legacy_compare = nouns.add_parser(
        "compare", parents=[_machine_parent(), execution]
    )
    _configure_sim_compare(legacy_compare)
    legacy_compare.set_defaults(
        command="sim", verb="compare", _deprecated="compare"
    )
    legacy_profile = nouns.add_parser(
        "profile",
        parents=[
            _machine_parent(cores=64),
            _out_parent(None, "report path"),
        ],
    )
    _configure_sim_profile(legacy_profile)
    legacy_profile.set_defaults(
        command="sim", verb="profile", _deprecated="profile"
    )
    # `repro apps` (no verb) must keep working: the canonical `apps` parser
    # above requires a verb, so route the bare spelling through a default.
    apps_verbs.required = False
    apps.set_defaults(verb="list")

    # Singular spellings of the recorded-trace verbs (`repro trace record`
    # etc.) route to the `traces` noun with a deprecation notice; the
    # `trace` noun itself stays the observability layer.
    for verb, configure in (
        ("record", _configure_traces_record),
        ("convert", _configure_traces_convert),
        ("info", _configure_traces_info),
        ("validate", _configure_traces_validate),
        ("replay", _configure_traces_replay),
    ):
        parents = []
        if verb == "record":
            parents = [
                _machine_parent(),
                _out_parent(None, "trace output path (required)"),
            ]
        elif verb == "convert":
            parents = [_out_parent(None, "trace output path (required)")]
        legacy = trace_verbs.add_parser(verb, parents=parents)
        configure(legacy)
        legacy.set_defaults(
            command="traces", verb=verb, _deprecated=f"trace {verb}"
        )

    return parser


def _rewrite_legacy_argv(argv: List[str]) -> tuple:
    """Map old command spellings onto the noun-verb grammar.

    ``repro figure <artifact>`` (old) becomes ``repro figure render
    <artifact>``; the pure renames (``run``/``compare``/``profile``) are
    handled by hidden alias subparsers instead. Returns the possibly
    rewritten argv plus the deprecated spelling used (or ``None``).
    """
    if (
        len(argv) >= 2
        and argv[0] == "figure"
        and argv[1] not in ("render", "-h", "--help")
    ):
        return ["figure", "render"] + list(argv[1:]), "figure"
    return list(argv), None


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    if argv is None:
        argv = sys.argv[1:]
    argv, legacy = _rewrite_legacy_argv(list(argv))
    args = build_parser().parse_args(argv)
    if legacy is not None:
        args._deprecated = legacy
    # Bare `repro verify ...` (no verb) is the old spelling of `verify run`.
    if args.command == "verify" and getattr(args, "verb", None) is None:
        args.verb = "run"
        args._deprecated = "verify"
    return args


def _warn_deprecated(args: argparse.Namespace) -> None:
    old = getattr(args, "_deprecated", None)
    if old:
        print(
            f"repro: `repro {old}` is deprecated; use "
            f"`repro {DEPRECATED_ALIASES[old]}` (see docs/API.md)",
            file=sys.stderr,
        )


# ------------------------------------------------------------- handlers


def _cmd_sim_run(args: argparse.Namespace) -> int:
    config = _config_with_mac(
        protocol_config(args.protocol, num_cores=args.cores, seed=args.seed),
        args.mac,
    )
    result = _executor_from(args).run(args.app, config, args.memops)
    if args.json:
        print(json.dumps(result_to_dict(result), indent=2, sort_keys=True))
        return 0
    print(f"{args.app} on {args.protocol} @ {args.cores} cores")
    print(f"  cycles            : {result.cycles:,}")
    print(f"  L1 MPKI           : {result.mpki:.2f}")
    print(f"  memory stall      : {result.memory_stall_fraction:.1%}")
    percentiles = result.latency_percentiles()
    if percentiles:
        print(
            f"  latency p50/95/99 : "
            f"{percentiles['p50']:.0f} / {percentiles['p95']:.0f} / "
            f"{percentiles['p99']:.0f} cycles"
        )
    print(f"  wireless writes   : {result.wireless_writes:,}")
    print(f"  collision prob    : {result.collision_probability:.2%}")
    print(f"  energy (pJ)       : {result.energy.total:,.0f}")
    return 0


def _cmd_sim_compare(args: argparse.Namespace) -> int:
    base, widir = _executor_from(args).run_pair(
        args.app, num_cores=args.cores, memops_per_core=args.memops, seed=args.seed
    )
    print(f"{args.app} @ {args.cores} cores ({args.memops} refs/core)")
    print(f"  Baseline cycles : {base.cycles:,}  (MPKI {base.mpki:.2f})")
    print(f"  WiDir cycles    : {widir.cycles:,}  (MPKI {widir.mpki:.2f})")
    print(f"  WiDir speedup   : {base.cycles / widir.cycles:.3f}x")
    print(f"  energy ratio    : {widir.energy.total / base.energy.total:.3f}")
    return 0


def _cmd_figure_render(args: argparse.Namespace) -> int:
    apps = ALL_APPS if args.apps.strip() == "all" else tuple(
        name.strip() for name in args.apps.split(",") if name.strip()
    )
    unknown = [a for a in apps if a not in APP_PROFILES]
    if unknown:
        print(f"unknown apps: {', '.join(unknown)}", file=sys.stderr)
        return 2
    result = FIGURES[args.name](
        apps=apps,
        cores=args.cores,
        memops=args.memops,
        executor=_executor_from(args),
    )
    if isinstance(result, dict):  # figure8-style multi-table
        for figure in result.values():
            print(figure.text)
    else:
        print(result.text)
    return 0


def _cmd_sim_profile(args: argparse.Namespace) -> int:
    """Profile one simulation in-process and write a pstats report.

    The run goes straight through :func:`repro.harness.runner.run_app`
    (no executor, no subprocesses, no result cache) so the profile shows
    the simulation inner loop itself. By default one warm-up run executes
    first: it populates the trace-synthesis memo so the report reflects
    the steady-state cost a sweep pays per point, which is what
    docs/PERFORMANCE.md tracks. Pass ``--cold`` to include synthesis.
    """
    import cProfile
    import io
    import pstats
    import time
    from pathlib import Path

    from repro.engine.batch import batched_default, set_batched_default
    from repro.harness.runner import run_app

    batched = batched_default() if args.batched is None else args.batched
    previous_batched = set_batched_default(batched)

    def one_run():
        config = _config_with_mac(
            protocol_config(
                args.protocol, num_cores=args.cores, seed=args.seed
            ),
            args.mac,
        )
        return run_app(
            args.app, config, args.memops, trace_seed=args.trace_seed
        )

    try:
        if not args.cold:
            one_run()  # warm the trace memo / imports
        profiler = cProfile.Profile()
        start = time.perf_counter()
        profiler.enable()
        result = one_run()
        profiler.disable()
        wall = time.perf_counter() - start
    finally:
        set_batched_default(previous_batched)

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    header = (
        f"# repro profile: {args.app} on {args.protocol} @ {args.cores} cores\n"
        f"# memops/core={args.memops} seed={args.seed} "
        f"trace_seed={args.trace_seed} "
        f"kernel={'batched' if batched else 'heap'} "
        f"{'cold' if args.cold else 'warm'} sort={args.sort}\n"
        f"# simulated cycles={result.cycles:,} "
        f"wall={wall:.3f}s (uninstrumented wall is lower; "
        f"cProfile adds per-call overhead)\n\n"
    )
    # Relativize source paths so reports are comparable across checkouts.
    text = (header + stream.getvalue()).replace(str(Path.cwd().resolve()) + "/", "")
    print(text)
    if args.out != "-":
        if args.out is None:
            out_path = Path("docs") / "profiles" / (
                f"{args.app}-{args.protocol}-{args.cores}c.txt"
            )
        else:
            out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(text, encoding="utf-8")
        print(f"wrote {out_path}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Run a verification campaign, or replay a failure artifact.

    Campaign mode output is fully deterministic for a given
    ``(--campaign, --seed, --trials, --mutate)`` tuple — no wall-clock
    times, no absolute paths in the summary — so two identical invocations
    produce byte-identical stdout (the CI determinism gate diffs them).
    """
    from pathlib import Path

    from repro.verify.artifacts import FailureArtifact, shrink_trial
    from repro.verify.fuzz import CAMPAIGNS, execute_trial, run_campaign
    from repro.verify.litmus import run_suite
    from repro.verify.mutations import MUTATIONS

    if args.verb == "replay":
        artifact = FailureArtifact.load(args.artifact)
        print(
            f"replaying: campaign={artifact.campaign} seed={artifact.seed} "
            f"trial={artifact.trial_index} "
            f"(shrunk {artifact.original_ops} -> {artifact.shrunk_ops} ops)"
            if artifact.shrunk
            else f"replaying: campaign={artifact.campaign} "
            f"seed={artifact.seed} trial={artifact.trial_index}"
        )
        print(f"recorded failure: {artifact.failure}")
        if artifact.trace:
            from repro.obs.recorder import FlightRecorder

            print("recorded timeline (flight-recorder window of the "
                  "original failing run):")
            for line in FlightRecorder.render_payload(
                artifact.trace, indent="  "
            ):
                print(line)
        result = execute_trial(artifact.spec)
        if result.ok:
            print("replay PASSED — the failure did not reproduce")
            return 1
        print(f"replay failure  : {result.failure}")
        print("failure reproduced")
        return 0

    if args.campaign not in CAMPAIGNS:
        print(
            f"unknown campaign {args.campaign!r}; "
            f"available: {', '.join(sorted(CAMPAIGNS))}",
            file=sys.stderr,
        )
        return 2
    if args.mutate is not None and args.mutate not in MUTATIONS:
        print(
            f"unknown mutation {args.mutate!r}; "
            f"available: {', '.join(sorted(MUTATIONS))}",
            file=sys.stderr,
        )
        return 2

    violations = 0
    if not args.skip_litmus:
        litmus_results = run_suite(
            num_cores=8,
            schedules=args.litmus_schedules,
            seed=args.seed,
            online_interval=150,
        )
        print(f"== litmus: {len(litmus_results)} (test, config) pairs ==")
        for result in litmus_results:
            print(f"  {result.summary()}")
            for violation in result.violations:
                print(f"    ! {violation}")
            violations += len(result.violations)

    plan = CAMPAIGNS[args.campaign]
    trials = args.trials if args.trials is not None else plan.trials
    suffix = f" mutate={args.mutate}" if args.mutate else ""
    print(
        f"== fuzz: campaign={args.campaign} seed={args.seed} "
        f"trials={trials}{suffix} =="
    )
    artifact_dir = Path(args.artifact_dir)
    artifacts: List[str] = []

    def on_trial(index, spec, trial) -> None:
        from repro.coherence.backend import get_backend

        protocol = spec.config["protocol"]
        mws = spec.config["directory"]["max_wired_sharers"]
        label = (
            f"{protocol}-mws{mws}"
            if get_backend(protocol).uses_sharer_threshold
            else protocol
        )
        if trial.ok:
            print(
                f"  trial {index:02d} {label:<12} ok    "
                f"digest={trial.digest} cycles={trial.cycles}"
            )
            return
        print(f"  trial {index:02d} {label:<12} FAIL  {trial.failure}")
        spec_to_save = spec
        original_ops = spec.total_ops
        if not args.no_shrink:
            spec_to_save = shrink_trial(spec)
            print(
                f"    shrunk {original_ops} -> {spec_to_save.total_ops} ops"
            )
        artifact = FailureArtifact(
            campaign=args.campaign,
            seed=args.seed,
            trial_index=index,
            failure=trial.failure,
            spec=spec_to_save,
            shrunk=not args.no_shrink,
            original_ops=original_ops,
            shrunk_ops=spec_to_save.total_ops,
            trace=trial.trace,
        )
        name = f"{args.campaign}-s{args.seed}-t{index:03d}.json"
        artifact.save(artifact_dir / name)
        artifacts.append(name)
        print(f"    artifact: {name}")

    campaign_result = run_campaign(
        args.campaign,
        seed=args.seed,
        trials=trials,
        mutation=args.mutate,
        on_trial=on_trial,
    )
    failures = violations + len(campaign_result.failures)
    print(
        f"== summary: litmus_violations={violations} "
        f"fuzz_failures={len(campaign_result.failures)} "
        f"campaign_digest={campaign_result.digest} =="
    )
    if artifacts:
        print(
            f"replay with: python -m repro verify replay "
            f"{args.artifact_dir}/{artifacts[0]}"
        )
    return 1 if failures else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Record, export, or summarize an observability capture.

    ``trace run`` executes in-process through
    :func:`repro.harness.runner.run_app` (no executor, no cache: the run
    must own a live machine to read the capture from). The simulated
    results are bit-identical with tracing on or off — the exported
    ``trace.json`` is pure addition.
    """
    from dataclasses import replace
    from pathlib import Path

    from repro.config.system import ObsConfig
    from repro.obs import (
        counter_track_names,
        export_chrome_trace,
        render_text_timeline,
        summarize_capture,
        validate_chrome_trace,
        write_chrome_trace,
    )

    if args.verb in ("export", "summarize"):
        capture = json.loads(Path(args.capture).read_text(encoding="utf-8"))
        if args.verb == "summarize":
            print(summarize_capture(capture))
            if args.timeline:
                print(render_text_timeline(capture, limit=args.limit))
            return 0
        if args.format == "text":
            text = render_text_timeline(capture, limit=args.limit)
            if args.out is None:
                print(text)
            else:
                Path(args.out).write_text(text + "\n", encoding="utf-8")
                print(f"wrote {args.out}")
            return 0
        out = Path(args.out if args.out is not None else "trace.json")
        write_chrome_trace(capture, out)
        print(f"wrote {out}")
        return 0

    # trace run
    from repro.harness.runner import run_app

    config = _config_with_mac(
        protocol_config(args.preset, num_cores=args.cores, seed=args.seed),
        args.mac,
    )
    obs_defaults = ObsConfig()
    config = replace(
        config,
        obs=ObsConfig(
            enabled=True,
            flight_recorder_depth=(
                args.depth
                if args.depth is not None
                else obs_defaults.flight_recorder_depth
            ),
            sample_interval=(
                args.sample_interval
                if args.sample_interval is not None
                else obs_defaults.sample_interval
            ),
        ),
    )
    sink: List = []
    result = run_app(
        args.app,
        config,
        args.memops,
        trace_seed=args.trace_seed,
        machine_sink=sink,
    )
    machine = sink[0]
    capture = machine.obs.capture(app=args.app)

    print(
        f"{args.app} on {args.preset} @ {args.cores} cores: "
        f"{result.cycles:,} cycles, {len(capture['spans'])} spans, "
        f"{len(capture['events']['events'])} recorder events"
    )
    orphans = capture.get("orphans", [])
    if orphans:
        print(f"WARNING: {len(orphans)} orphan spans (ids {orphans[:8]} ...)")

    if args.capture is not None:
        capture_path = Path(args.capture)
        capture_path.parent.mkdir(parents=True, exist_ok=True)
        capture_path.write_text(
            json.dumps(capture, sort_keys=True), encoding="utf-8"
        )
        print(f"wrote capture {capture_path}")

    trace = export_chrome_trace(capture)
    problems = validate_chrome_trace(trace)
    out = Path(args.out)
    write_chrome_trace(capture, out)
    tracks = counter_track_names(trace)
    print(f"wrote {out} ({len(trace['traceEvents'])} events)")
    print(f"counter tracks: {', '.join(tracks)}")
    if args.timeline:
        print(render_text_timeline(capture, limit=args.limit))
    if problems:
        for problem in problems[:10]:
            print(f"trace validation problem: {problem}", file=sys.stderr)
        return 1
    return 1 if orphans else 0


def _cmd_traces(args: argparse.Namespace) -> int:
    """``traces record/convert/info/validate/replay`` — the recorded-trace
    subsystem (:mod:`repro.traces`; see docs/TRACES.md)."""
    from repro import api
    from repro.traces import TraceCorruptionError, TraceFormatError
    from repro.traces.replay import result_digest

    def show(info, extra: str = "") -> None:
        if getattr(args, "json", False):
            print(json.dumps(info.details, indent=2, sort_keys=True))
            return
        print(
            f"{info.path}: {info.app} x {info.num_cores} cores, "
            f"{info.records:,} records in {info.chunks} chunks "
            f"({info.codec}, {info.file_bytes:,} bytes, "
            f"{info.compression_ratio:.1f}x)"
        )
        print(f"  trace_id: {info.trace_id}")
        if extra:
            print(f"  {extra}")

    try:
        if args.verb == "record":
            if args.out is None:
                print("traces record requires --out PATH", file=sys.stderr)
                return 2
            info = api.record_trace(
                args.app,
                out=args.out,
                cores=args.cores,
                memops=args.memops,
                trace_seed=args.trace_seed,
                chunk_records=args.chunk_records,
                codec=args.codec,
            )
            show(info)
            return 0
        if args.verb == "convert":
            if args.out is None:
                print("traces convert requires --out PATH", file=sys.stderr)
                return 2
            info = api.convert_trace(
                args.src,
                out=args.out,
                cores=args.cores,
                app=args.app,
                chunk_records=args.chunk_records,
                codec=args.codec,
            )
            show(info)
            return 0
        if args.verb == "info":
            show(api.trace_info(args.path))
            return 0
        if args.verb == "validate":
            info = api.validate_trace(args.path)
            if getattr(args, "json", False):
                print(json.dumps(info.details, indent=2, sort_keys=True))
            else:
                print(
                    f"{info.path}: OK — {info.records:,} records in "
                    f"{info.chunks} chunks, trace_id {info.trace_id}"
                )
            return 0

        # replay
        result = api.replay(
            args.path,
            protocol=args.protocol,
            seed=args.seed,
            snapshot_every=args.snapshot_every,
            snapshot_path=args.snapshot_path,
            expect_trace_id=args.expect_trace_id,
        )
        if args.json:
            print(
                json.dumps(result_to_dict(result), indent=2, sort_keys=True)
            )
            return 0
        print(
            f"{result.app} replayed on {args.protocol}: "
            f"{result.cycles:,} cycles"
        )
        print(f"  L1 MPKI       : {result.mpki:.2f}")
        print(f"  memory stall  : {result.memory_stall_fraction:.1%}")
        print(f"  result digest : {result_digest(result)}")
        return 0
    except TraceCorruptionError as error:
        print(f"trace corrupt: {error}", file=sys.stderr)
        return 1
    except (TraceFormatError, OSError) as error:
        print(f"trace error: {error}", file=sys.stderr)
        return 2


def _cmd_apps_list(_args: argparse.Namespace) -> int:
    if getattr(_args, "macs", False):
        from repro.wireless.mac import registered_macs

        print(
            f"{'mac':14s} {'collision-free':14s} {'backoff':8s} "
            f"{'channels':9s} description"
        )
        for mac in registered_macs():
            print(
                f"{mac.name:14s} "
                f"{'yes' if mac.collision_free else 'no':14s} "
                f"{'yes' if mac.uses_backoff else 'no':8s} "
                f"{'multi' if mac.multi_channel else 'single':9s} "
                f"{mac.description}"
            )
        return 0
    if getattr(_args, "protocols", False):
        from repro.coherence.backend import registered_backends

        print(f"{'protocol':16s} {'wireless':8s} {'threshold':9s} description")
        for backend in registered_backends():
            print(
                f"{backend.name:16s} "
                f"{'yes' if backend.uses_wireless else 'no':8s} "
                f"{'yes' if backend.uses_sharer_threshold else 'no':9s} "
                f"{backend.description}"
            )
        return 0
    print(f"{'app':14s} {'suite':8s} {'paper MPKI':>10s} {'sharing mix'}")
    for name in ALL_APPS:
        profile = APP_PROFILES[name]
        mix = ", ".join(f"{s}w x{w:.2f}" for s, w in profile.sharing_mix)
        print(f"{name:14s} {profile.suite:8s} {profile.paper_mpki:>10.2f} {mix}")
    return 0


def _parse_protocols(value: str) -> Tuple[str, ...]:
    """Parse a ``--protocols`` list; 'all' means every registered backend."""
    if value.strip() == "all":
        return backend_names()
    return tuple(name.strip() for name in value.split(",") if name.strip())


def _parse_macs(value: str) -> Tuple[str, ...]:
    """Parse a ``--macs`` list; 'all' means every registered MAC."""
    if value.strip() == "all":
        return mac_names()
    return tuple(name.strip() for name in value.split(",") if name.strip())


def _campaign_spec_from_args(args: argparse.Namespace, directory):
    """Build a :class:`CampaignSpec` from ``campaign run/serve`` flags.

    Prints a usage error and returns ``None`` when the flags are invalid
    (missing apps for generator sweeps, missing --trace-path for trace
    sweeps, unknown app names).
    """
    from repro.harness.campaign import CampaignSpec

    if args.sweep == "trace":
        if not args.trace_path:
            print(
                "campaign --sweep trace requires --trace-path FILE",
                file=sys.stderr,
            )
            return None
        apps = ()
    else:
        if not args.apps:
            print(
                "campaign requires --apps (unless --sweep trace)",
                file=sys.stderr,
            )
            return None
        apps = (
            ALL_APPS
            if args.apps.strip() == "all"
            else tuple(
                name.strip() for name in args.apps.split(",") if name.strip()
            )
        )
        unknown = [a for a in apps if a not in APP_PROFILES]
        if unknown:
            print(f"unknown apps: {', '.join(unknown)}", file=sys.stderr)
            return None
    return CampaignSpec(
        name=args.name if args.name else directory.name,
        kind=args.sweep,
        apps=apps,
        cores=(args.cores,),
        memops=args.memops,
        seed=args.seed,
        thresholds=tuple(
            int(t) for t in args.thresholds.split(",") if t.strip()
        ),
        trace_seed=args.trace_seed,
        protocols=_parse_protocols(args.protocols),
        macs=_parse_macs(args.macs),
        trace_path=args.trace_path or "",
        trace_shards=args.trace_shards,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    """``campaign run/resume/status/render`` — see docs/API.md for the
    on-disk checkpoint formats and the resume-identity contract."""
    from pathlib import Path

    from repro.harness.campaign import (
        Campaign,
        CampaignError,
        CampaignSpec,
        run_campaign,
    )
    from repro.harness.supervisor import (
        RetryPolicy,
        SeededFaults,
        WorkerSupervisor,
    )
    from repro.obs.campaign import CampaignTelemetry

    try:
        if args.verb == "status":
            code = _campaign_live_status(args)
            if code is not None:
                return code
            if args.dir is None:
                print(
                    "campaign status requires DIR or --connect HOST:PORT",
                    file=sys.stderr,
                )
                return 2
            print(Campaign.load(Path(args.dir)).status().render())
            return 0

        if args.verb == "render":
            campaign = Campaign.load(Path(args.dir))
            spec = campaign.spec
            source = campaign.result_source(strict=args.strict)
            result = FIGURES[args.figure](
                apps=spec.apps,
                cores=spec.cores[0],
                memops=spec.memops,
                executor=source,
                protocols=spec.protocols,
                macs=spec.macs,
                seed=spec.seed,
            )
            if isinstance(result, dict):  # figure8-style multi-table
                partial = False
                for figure in result.values():
                    print(figure.text)
                    partial = partial or figure.partial
            else:
                print(result.text)
                partial = result.partial
            return 3 if partial else 0

        # run / resume
        if args.verb == "run":
            if args.out is None:
                print("campaign run requires --out DIR", file=sys.stderr)
                return 2
            directory = Path(args.out)
            spec = _campaign_spec_from_args(args, directory)
            if spec is None:
                return 2
        else:  # resume
            directory = Path(args.dir)
            spec = None

        faults = (
            SeededFaults.parse(args.inject, seed=args.inject_seed)
            if args.inject
            else None
        )
        supervisor = WorkerSupervisor(
            workers=args.workers,
            timeout=args.timeout,
            retry=RetryPolicy(
                max_attempts=args.retries,
                unit=args.backoff_unit,
                seed=args.backoff_seed,
            ),
            faults=faults,
        )
        telemetry = CampaignTelemetry()
        report = run_campaign(
            directory,
            spec,
            supervisor=supervisor,
            executor=_executor_from(args),
            telemetry=telemetry,
        )
        print(report.render())
        print("telemetry:")
        for line in telemetry.render_counters(indent="  "):
            print(line)
        if args.trace_out:
            written = telemetry.write_chrome_trace(
                args.trace_out, workers=supervisor.workers
            )
            print(f"wrote campaign trace {written}")
        return 0 if report.ok else 1
    except CampaignError as error:
        print(f"campaign error: {error}", file=sys.stderr)
        return 2


def _campaign_live_status(args: argparse.Namespace) -> Optional[int]:
    """Handle ``campaign status --connect/--live``.

    Returns an exit code when a live query was requested (successful or
    not), or ``None`` to fall through to the journal-based status.
    """
    from pathlib import Path

    from repro.harness.distributed import (
        coordinator_endpoint,
        live_status,
        render_live_status,
    )
    from repro.harness.protocol import ProtocolError, RpcError, parse_endpoint

    endpoint = None
    if args.connect:
        try:
            endpoint = parse_endpoint(args.connect)
        except ValueError as error:
            print(f"campaign status: {error}", file=sys.stderr)
            return 2
    elif args.live:
        if args.dir is None:
            print(
                "campaign status --live requires DIR", file=sys.stderr
            )
            return 2
        endpoint = coordinator_endpoint(Path(args.dir))
        if endpoint is None:
            print(
                f"no coordinator advertised in {args.dir} (is `campaign "
                "serve` running?)",
                file=sys.stderr,
            )
            return 2
    if endpoint is None:
        return None
    try:
        print(render_live_status(live_status(*endpoint)))
        return 0
    except (OSError, ProtocolError, RpcError) as error:
        print(
            f"coordinator at {endpoint[0]}:{endpoint[1]} unreachable: "
            f"{error}",
            file=sys.stderr,
        )
        return 2


def _cmd_campaign_serve(args: argparse.Namespace) -> int:
    """``campaign serve`` — the distributed analogue of ``campaign run``:
    an asyncio coordinator shards the plan, forks ``--workers`` local
    agents, and accepts remote ``campaign worker`` joins on --host:--port.
    """
    from pathlib import Path

    from repro.harness.campaign import CampaignError, CampaignSpec
    from repro.harness.distributed import DistributedError, run_distributed
    from repro.harness.resultstore import ResultStore
    from repro.harness.supervisor import RetryPolicy
    from repro.obs.campaign import CampaignTelemetry

    if args.out is None:
        print("campaign serve requires --out DIR", file=sys.stderr)
        return 2
    directory = Path(args.out)
    spec = None
    if args.apps or (args.sweep == "trace" and args.trace_path):
        spec = _campaign_spec_from_args(args, directory)
        if spec is None:
            return 2

    telemetry = CampaignTelemetry()
    try:
        report = run_distributed(
            directory,
            spec,
            workers=args.workers,
            shards=args.shards,
            host=args.host,
            port=args.port,
            executor=Executor(
                workers=1, use_cache=False if args.no_cache else None
            ),
            store=ResultStore(Path(args.store)) if args.store else None,
            tenant=args.tenant,
            retry=RetryPolicy(
                max_attempts=args.retries, seed=args.backoff_seed
            ),
            lease_timeout=args.lease_timeout,
            runner=args.runner,
            runner_seconds=args.runner_seconds,
            chaos_kill_after=args.chaos_kill_after,
            timeout=args.timeout,
            telemetry=telemetry,
        )
    except (CampaignError, DistributedError) as error:
        print(f"campaign error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    print("telemetry:")
    for line in telemetry.render_counters(indent="  "):
        print(line)
    if args.trace_out:
        written = telemetry.write_chrome_trace(
            args.trace_out, workers=report.workers
        )
        print(f"wrote campaign trace {written}")
    return 0 if report.ok else 1


def _cmd_campaign_worker(args: argparse.Namespace) -> int:
    """``campaign worker`` — join a coordinator, lease/steal/execute until
    the campaign drains, then exit."""
    from repro.harness.distributed import WorkerAgent
    from repro.harness.protocol import ProtocolError, RpcError, parse_endpoint

    try:
        host, port = parse_endpoint(args.connect)
    except ValueError as error:
        print(f"campaign worker: {error}", file=sys.stderr)
        return 2
    try:
        completed = WorkerAgent(host, port, name=args.name).run()
    except (OSError, ProtocolError, RpcError) as error:
        print(
            f"worker lost coordinator {host}:{port}: {error}",
            file=sys.stderr,
        )
        return 2
    print(f"worker drained: {completed} runs executed")
    return 0


def _cmd_campaign_submit(args: argparse.Namespace) -> int:
    """``campaign submit`` — enqueue pending runs into a live coordinator,
    respecting its token-bucket rate limit (retries on 429)."""
    import time as _time
    from pathlib import Path

    from repro.harness.distributed import coordinator_endpoint
    from repro.harness.protocol import (
        ERR_THROTTLED,
        ProtocolError,
        RpcClient,
        RpcError,
        parse_endpoint,
    )

    if args.connect:
        try:
            endpoint = parse_endpoint(args.connect)
        except ValueError as error:
            print(f"campaign submit: {error}", file=sys.stderr)
            return 2
    elif args.dir is not None:
        endpoint = coordinator_endpoint(Path(args.dir))
        if endpoint is None:
            print(
                f"no coordinator advertised in {args.dir} (is `campaign "
                "serve` running?)",
                file=sys.stderr,
            )
            return 2
    else:
        print(
            "campaign submit requires DIR or --connect HOST:PORT",
            file=sys.stderr,
        )
        return 2

    keys = (
        [key.strip() for key in args.keys.split(",") if key.strip()]
        if args.keys
        else None
    )
    deadline = _time.monotonic() + max(0.0, args.wait)
    throttled = 0
    try:
        with RpcClient(*endpoint) as client:
            while True:
                try:
                    result = client.call("submit", keys=keys)
                    break
                except RpcError as error:
                    if error.code != ERR_THROTTLED:
                        raise
                    throttled += 1
                    if _time.monotonic() >= deadline:
                        print(
                            f"submit still throttled after {args.wait:.1f}s "
                            f"({throttled} attempts): {error}",
                            file=sys.stderr,
                        )
                        return 1
                    _time.sleep(0.2)
    except (OSError, ProtocolError, RpcError) as error:
        print(
            f"coordinator at {endpoint[0]}:{endpoint[1]} unreachable: "
            f"{error}",
            file=sys.stderr,
        )
        return 2
    print(
        f"submitted: {result.get('accepted', 0)} queued, "
        f"{result.get('cache_hits', 0)} cache hits, "
        f"{result.get('store_hits', 0)} store hits, "
        f"{result.get('queued', 0)} now pending"
        + (f" ({throttled} throttled retries)" if throttled else "")
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parse_args(argv)
    _warn_deprecated(args)
    handlers = {
        ("sim", "run"): _cmd_sim_run,
        ("sim", "compare"): _cmd_sim_compare,
        ("sim", "profile"): _cmd_sim_profile,
        ("figure", "render"): _cmd_figure_render,
        ("apps", "list"): _cmd_apps_list,
        ("verify", "run"): _cmd_verify,
        ("verify", "replay"): _cmd_verify,
        ("trace", "run"): _cmd_trace,
        ("trace", "export"): _cmd_trace,
        ("trace", "summarize"): _cmd_trace,
        ("traces", "record"): _cmd_traces,
        ("traces", "convert"): _cmd_traces,
        ("traces", "info"): _cmd_traces,
        ("traces", "validate"): _cmd_traces,
        ("traces", "replay"): _cmd_traces,
        ("campaign", "run"): _cmd_campaign,
        ("campaign", "resume"): _cmd_campaign,
        ("campaign", "status"): _cmd_campaign,
        ("campaign", "render"): _cmd_campaign,
        ("campaign", "serve"): _cmd_campaign_serve,
        ("campaign", "worker"): _cmd_campaign_worker,
        ("campaign", "submit"): _cmd_campaign_submit,
    }
    try:
        return handlers[(args.command, args.verb)](args)
    except BrokenPipeError:  # e.g. `repro sim run ... | head`
        try:
            sys.stdout.close()
        except OSError:  # pragma: no cover - double-close race
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
