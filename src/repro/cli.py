"""Command-line interface.

``python -m repro <command>`` exposes the harness without writing any
Python:

===========  =============================================================
run          run one app on one machine, print the headline metrics
compare      run Baseline and WiDir on the same traces, print the ratio
figure       regenerate a paper artifact (fig5..fig10, table4..table6,
             motivation) and print its table
apps         list the 20 application profiles and their calibration
profile      cProfile one in-process run; write a pstats report to
             ``docs/profiles/`` (see docs/PERFORMANCE.md)
verify       run a protocol verification campaign (litmus suite + fault-
             injecting fuzzing with online invariant checking); failures
             are shrunk and archived as replayable JSON artifacts
verify replay  re-execute a failure artifact (see docs/TESTING.md)
trace run    run one app with the observability layer enabled; write a
             Perfetto/Chrome ``trace.json`` plus a raw capture
trace export   re-export a saved capture (chrome or text timeline)
trace summarize  span/latency statistics of a saved capture
=========== ==============================================================

Simulations execute through :mod:`repro.harness.executor`: identical runs
are deduplicated, results are memoized on disk (``REPRO_CACHE_DIR``,
bypass with ``--no-cache``), and unique runs fan out over ``--workers``
processes (default ``REPRO_WORKERS`` or the CPU count) with byte-identical
output either way. See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.config.presets import baseline_config, widir_config
from repro.harness import figures as figure_functions
from repro.harness.executor import Executor
from repro.harness.motivation import section2c_sharing_probe
from repro.harness.results_io import result_to_dict
from repro.workloads.profiles import ALL_APPS, APP_PROFILES

FIGURES = {
    "motivation": lambda **kw: section2c_sharing_probe(
        apps=list(kw["apps"]), num_cores=kw["cores"], memops=kw["memops"]
    ),
    "table4": lambda **kw: figure_functions.table4_mpki_characterization(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "fig5": lambda **kw: figure_functions.figure5_sharer_histogram(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "fig6": lambda **kw: figure_functions.figure6_mpki(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "fig7": lambda **kw: figure_functions.figure7_memory_latency(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "table5": lambda **kw: figure_functions.table5_hop_distribution(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "fig8": lambda **kw: figure_functions.figure8_execution_time(
        apps=kw["apps"], memops=kw["memops"], executor=kw["executor"]
    ),
    "fig9": lambda **kw: figure_functions.figure9_energy(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
    "fig10": lambda **kw: figure_functions.figure10_scalability(
        apps=kw["apps"], memops=kw["memops"], executor=kw["executor"]
    ),
    "table6": lambda **kw: figure_functions.table6_sensitivity(
        apps=kw["apps"], num_cores=kw["cores"], memops=kw["memops"],
        executor=kw["executor"],
    ),
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=16, help="core count")
    parser.add_argument(
        "--memops", type=int, default=800, help="memory references per core"
    )
    parser.add_argument("--seed", type=int, default=42, help="machine seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="simulation worker processes (default: REPRO_WORKERS or CPU "
        "count; 1 forces the deterministic serial path)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache (REPRO_CACHE_DIR) and "
        "re-simulate every run",
    )


def _executor_from(args: argparse.Namespace) -> Executor:
    return Executor(
        workers=args.workers, use_cache=False if args.no_cache else None
    )


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiDir (HPCA 2021) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one application")
    run_parser.add_argument("app", choices=ALL_APPS)
    run_parser.add_argument(
        "--protocol", choices=("baseline", "widir"), default="widir"
    )
    run_parser.add_argument("--json", action="store_true", help="emit JSON")
    _add_common(run_parser)

    compare_parser = sub.add_parser("compare", help="Baseline vs WiDir")
    compare_parser.add_argument("app", choices=ALL_APPS)
    _add_common(compare_parser)

    figure_parser = sub.add_parser("figure", help="regenerate a paper artifact")
    figure_parser.add_argument("name", choices=sorted(FIGURES))
    figure_parser.add_argument(
        "--apps", default="radiosity,water-spa,blackscholes",
        help="comma-separated app list, or 'all'",
    )
    _add_common(figure_parser)

    sub.add_parser("apps", help="list application profiles")

    profile_parser = sub.add_parser(
        "profile",
        help="cProfile one in-process simulation and write a pstats report",
    )
    profile_parser.add_argument("app", choices=ALL_APPS)
    profile_parser.add_argument(
        "--protocol", choices=("baseline", "widir"), default="widir"
    )
    profile_parser.add_argument("--cores", type=int, default=64, help="core count")
    profile_parser.add_argument(
        "--memops", type=int, default=800, help="memory references per core"
    )
    profile_parser.add_argument("--seed", type=int, default=42, help="machine seed")
    profile_parser.add_argument(
        "--trace-seed", type=int, default=7, help="workload trace seed"
    )
    profile_parser.add_argument(
        "--sort",
        choices=("tottime", "cumulative"),
        default="tottime",
        help="pstats sort key (default: tottime)",
    )
    profile_parser.add_argument(
        "--top", type=int, default=25, help="number of pstats rows to keep"
    )
    profile_parser.add_argument(
        "--cold",
        action="store_true",
        help="skip the warm-up run (include trace synthesis and import "
        "effects in the profile)",
    )
    profile_parser.add_argument(
        "--output",
        default=None,
        help="report path ('-' for stdout only; default "
        "docs/profiles/<app>-<protocol>-<cores>c.txt)",
    )

    verify_parser = sub.add_parser(
        "verify",
        help="run a protocol verification campaign (litmus + fuzzing), or "
        "replay a failure artifact",
    )
    verify_parser.add_argument(
        "--campaign", default="smoke", help="campaign name (smoke, deep)"
    )
    verify_parser.add_argument(
        "--seed", type=int, default=0, help="campaign root seed"
    )
    verify_parser.add_argument(
        "--trials", type=int, default=None, help="override the trial count"
    )
    verify_parser.add_argument(
        "--mutate",
        default=None,
        help="apply a seeded protocol mutation to every WiDir trial "
        "(mutation smoke testing; the campaign must fail)",
    )
    verify_parser.add_argument(
        "--litmus-schedules",
        type=int,
        default=6,
        help="issue schedules per litmus (test, config) pair",
    )
    verify_parser.add_argument(
        "--skip-litmus", action="store_true", help="fuzz trials only"
    )
    verify_parser.add_argument(
        "--artifact-dir",
        default="verify-artifacts",
        help="where failing trials are archived as replayable JSON",
    )
    verify_parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="archive failing trials without the delta-debugging pass",
    )
    verify_sub = verify_parser.add_subparsers(dest="verify_command")
    replay_parser = verify_sub.add_parser(
        "replay", help="re-execute a failure artifact"
    )
    replay_parser.add_argument("artifact", help="path to the artifact JSON")

    trace_parser = sub.add_parser(
        "trace", help="record / export / summarize observability captures"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    trace_run = trace_sub.add_parser(
        "run", help="run one app with tracing enabled and export a trace"
    )
    trace_run.add_argument(
        "--app", choices=ALL_APPS, default="radiosity", help="application"
    )
    trace_run.add_argument(
        "--preset", choices=("baseline", "widir"), default="widir"
    )
    trace_run.add_argument("--cores", type=int, default=16, help="core count")
    trace_run.add_argument(
        "--memops", type=int, default=800, help="memory references per core"
    )
    trace_run.add_argument("--seed", type=int, default=42, help="machine seed")
    trace_run.add_argument(
        "--trace-seed", type=int, default=0, help="workload trace seed"
    )
    trace_run.add_argument(
        "--sample-interval",
        type=int,
        default=None,
        help="counter sampling interval in cycles (default: ObsConfig)",
    )
    trace_run.add_argument(
        "--depth",
        type=int,
        default=None,
        help="flight-recorder ring depth per node (default: ObsConfig)",
    )
    trace_run.add_argument(
        "--out", default="trace.json", help="Chrome/Perfetto trace output path"
    )
    trace_run.add_argument(
        "--capture",
        default=None,
        help="also save the raw capture JSON (re-exportable offline)",
    )
    trace_run.add_argument(
        "--timeline", action="store_true", help="print the text timeline too"
    )
    trace_run.add_argument(
        "--limit", type=int, default=40, help="timeline rows to print"
    )

    trace_export = trace_sub.add_parser(
        "export", help="re-export a saved capture JSON"
    )
    trace_export.add_argument("capture", help="path to a saved capture JSON")
    trace_export.add_argument(
        "--format", choices=("chrome", "text"), default="chrome"
    )
    trace_export.add_argument(
        "--out",
        default=None,
        help="output path (default: trace.json for chrome, stdout for text)",
    )
    trace_export.add_argument(
        "--limit", type=int, default=None, help="text-timeline row cap"
    )

    trace_summarize = trace_sub.add_parser(
        "summarize", help="print span/latency statistics of a saved capture"
    )
    trace_summarize.add_argument("capture", help="path to a saved capture JSON")
    trace_summarize.add_argument(
        "--timeline", action="store_true", help="print the text timeline too"
    )
    trace_summarize.add_argument(
        "--limit", type=int, default=40, help="timeline rows to print"
    )
    return parser.parse_args(argv)


def _cmd_run(args: argparse.Namespace) -> int:
    make = widir_config if args.protocol == "widir" else baseline_config
    result = _executor_from(args).run(
        args.app, make(num_cores=args.cores, seed=args.seed), args.memops
    )
    if args.json:
        print(json.dumps(result_to_dict(result), indent=2, sort_keys=True))
        return 0
    print(f"{args.app} on {args.protocol} @ {args.cores} cores")
    print(f"  cycles            : {result.cycles:,}")
    print(f"  L1 MPKI           : {result.mpki:.2f}")
    print(f"  memory stall      : {result.memory_stall_fraction:.1%}")
    percentiles = result.latency_percentiles()
    if percentiles:
        print(
            f"  latency p50/95/99 : "
            f"{percentiles['p50']:.0f} / {percentiles['p95']:.0f} / "
            f"{percentiles['p99']:.0f} cycles"
        )
    print(f"  wireless writes   : {result.wireless_writes:,}")
    print(f"  collision prob    : {result.collision_probability:.2%}")
    print(f"  energy (pJ)       : {result.energy.total:,.0f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    base, widir = _executor_from(args).run_pair(
        args.app, num_cores=args.cores, memops_per_core=args.memops, seed=args.seed
    )
    print(f"{args.app} @ {args.cores} cores ({args.memops} refs/core)")
    print(f"  Baseline cycles : {base.cycles:,}  (MPKI {base.mpki:.2f})")
    print(f"  WiDir cycles    : {widir.cycles:,}  (MPKI {widir.mpki:.2f})")
    print(f"  WiDir speedup   : {base.cycles / widir.cycles:.3f}x")
    print(f"  energy ratio    : {widir.energy.total / base.energy.total:.3f}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    apps = ALL_APPS if args.apps.strip() == "all" else tuple(
        name.strip() for name in args.apps.split(",") if name.strip()
    )
    unknown = [a for a in apps if a not in APP_PROFILES]
    if unknown:
        print(f"unknown apps: {', '.join(unknown)}", file=sys.stderr)
        return 2
    result = FIGURES[args.name](
        apps=apps,
        cores=args.cores,
        memops=args.memops,
        executor=_executor_from(args),
    )
    if isinstance(result, dict):  # figure8-style multi-table
        for figure in result.values():
            print(figure.text)
    else:
        print(result.text)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile one simulation in-process and write a pstats report.

    The run goes straight through :func:`repro.harness.runner.run_app`
    (no executor, no subprocesses, no result cache) so the profile shows
    the simulation inner loop itself. By default one warm-up run executes
    first: it populates the trace-synthesis memo so the report reflects
    the steady-state cost a sweep pays per point, which is what
    docs/PERFORMANCE.md tracks. Pass ``--cold`` to include synthesis.
    """
    import cProfile
    import io
    import pstats
    import time
    from pathlib import Path

    from repro.harness.runner import run_app

    make = widir_config if args.protocol == "widir" else baseline_config

    def one_run():
        return run_app(
            args.app,
            make(num_cores=args.cores, seed=args.seed),
            args.memops,
            trace_seed=args.trace_seed,
        )

    if not args.cold:
        one_run()  # warm the trace memo / imports
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = one_run()
    profiler.disable()
    wall = time.perf_counter() - start

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    header = (
        f"# repro profile: {args.app} on {args.protocol} @ {args.cores} cores\n"
        f"# memops/core={args.memops} seed={args.seed} "
        f"trace_seed={args.trace_seed} "
        f"{'cold' if args.cold else 'warm'} sort={args.sort}\n"
        f"# simulated cycles={result.cycles:,} "
        f"wall={wall:.3f}s (uninstrumented wall is lower; "
        f"cProfile adds per-call overhead)\n\n"
    )
    # Relativize source paths so reports are comparable across checkouts.
    text = (header + stream.getvalue()).replace(str(Path.cwd().resolve()) + "/", "")
    print(text)
    if args.output != "-":
        if args.output is None:
            out_path = Path("docs") / "profiles" / (
                f"{args.app}-{args.protocol}-{args.cores}c.txt"
            )
        else:
            out_path = Path(args.output)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(text, encoding="utf-8")
        print(f"wrote {out_path}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Run a verification campaign, or replay a failure artifact.

    Campaign mode output is fully deterministic for a given
    ``(--campaign, --seed, --trials, --mutate)`` tuple — no wall-clock
    times, no absolute paths in the summary — so two identical invocations
    produce byte-identical stdout (the CI determinism gate diffs them).
    """
    from pathlib import Path

    from repro.verify.artifacts import FailureArtifact, shrink_trial
    from repro.verify.fuzz import CAMPAIGNS, execute_trial, run_campaign
    from repro.verify.litmus import run_suite
    from repro.verify.mutations import MUTATIONS

    if args.verify_command == "replay":
        artifact = FailureArtifact.load(args.artifact)
        print(
            f"replaying: campaign={artifact.campaign} seed={artifact.seed} "
            f"trial={artifact.trial_index} "
            f"(shrunk {artifact.original_ops} -> {artifact.shrunk_ops} ops)"
            if artifact.shrunk
            else f"replaying: campaign={artifact.campaign} "
            f"seed={artifact.seed} trial={artifact.trial_index}"
        )
        print(f"recorded failure: {artifact.failure}")
        if artifact.trace:
            from repro.obs.recorder import FlightRecorder

            print("recorded timeline (flight-recorder window of the "
                  "original failing run):")
            for line in FlightRecorder.render_payload(
                artifact.trace, indent="  "
            ):
                print(line)
        result = execute_trial(artifact.spec)
        if result.ok:
            print("replay PASSED — the failure did not reproduce")
            return 1
        print(f"replay failure  : {result.failure}")
        print("failure reproduced")
        return 0

    if args.campaign not in CAMPAIGNS:
        print(
            f"unknown campaign {args.campaign!r}; "
            f"available: {', '.join(sorted(CAMPAIGNS))}",
            file=sys.stderr,
        )
        return 2
    if args.mutate is not None and args.mutate not in MUTATIONS:
        print(
            f"unknown mutation {args.mutate!r}; "
            f"available: {', '.join(sorted(MUTATIONS))}",
            file=sys.stderr,
        )
        return 2

    violations = 0
    if not args.skip_litmus:
        litmus_results = run_suite(
            num_cores=8,
            schedules=args.litmus_schedules,
            seed=args.seed,
            online_interval=150,
        )
        print(f"== litmus: {len(litmus_results)} (test, config) pairs ==")
        for result in litmus_results:
            print(f"  {result.summary()}")
            for violation in result.violations:
                print(f"    ! {violation}")
            violations += len(result.violations)

    plan = CAMPAIGNS[args.campaign]
    trials = args.trials if args.trials is not None else plan.trials
    suffix = f" mutate={args.mutate}" if args.mutate else ""
    print(
        f"== fuzz: campaign={args.campaign} seed={args.seed} "
        f"trials={trials}{suffix} =="
    )
    artifact_dir = Path(args.artifact_dir)
    artifacts: List[str] = []

    def on_trial(index, spec, trial) -> None:
        protocol = spec.config["protocol"]
        mws = spec.config["directory"]["max_wired_sharers"]
        label = f"{protocol}-mws{mws}" if protocol == "widir" else protocol
        if trial.ok:
            print(
                f"  trial {index:02d} {label:<12} ok    "
                f"digest={trial.digest} cycles={trial.cycles}"
            )
            return
        print(f"  trial {index:02d} {label:<12} FAIL  {trial.failure}")
        spec_to_save = spec
        original_ops = spec.total_ops
        if not args.no_shrink:
            spec_to_save = shrink_trial(spec)
            print(
                f"    shrunk {original_ops} -> {spec_to_save.total_ops} ops"
            )
        artifact = FailureArtifact(
            campaign=args.campaign,
            seed=args.seed,
            trial_index=index,
            failure=trial.failure,
            spec=spec_to_save,
            shrunk=not args.no_shrink,
            original_ops=original_ops,
            shrunk_ops=spec_to_save.total_ops,
            trace=trial.trace,
        )
        name = f"{args.campaign}-s{args.seed}-t{index:03d}.json"
        artifact.save(artifact_dir / name)
        artifacts.append(name)
        print(f"    artifact: {name}")

    campaign_result = run_campaign(
        args.campaign,
        seed=args.seed,
        trials=trials,
        mutation=args.mutate,
        on_trial=on_trial,
    )
    failures = violations + len(campaign_result.failures)
    print(
        f"== summary: litmus_violations={violations} "
        f"fuzz_failures={len(campaign_result.failures)} "
        f"campaign_digest={campaign_result.digest} =="
    )
    if artifacts:
        print(
            f"replay with: python -m repro verify replay "
            f"{args.artifact_dir}/{artifacts[0]}"
        )
    return 1 if failures else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Record, export, or summarize an observability capture.

    ``trace run`` executes in-process through
    :func:`repro.harness.runner.run_app` (no executor, no cache: the run
    must own a live machine to read the capture from). The simulated
    results are bit-identical with tracing on or off — the exported
    ``trace.json`` is pure addition.
    """
    from dataclasses import replace
    from pathlib import Path

    from repro.config.system import ObsConfig
    from repro.obs import (
        counter_track_names,
        export_chrome_trace,
        render_text_timeline,
        summarize_capture,
        validate_chrome_trace,
        write_chrome_trace,
    )

    if args.trace_command in ("export", "summarize"):
        capture = json.loads(Path(args.capture).read_text(encoding="utf-8"))
        if args.trace_command == "summarize":
            print(summarize_capture(capture))
            if args.timeline:
                print(render_text_timeline(capture, limit=args.limit))
            return 0
        if args.format == "text":
            text = render_text_timeline(capture, limit=args.limit)
            if args.out is None:
                print(text)
            else:
                Path(args.out).write_text(text + "\n", encoding="utf-8")
                print(f"wrote {args.out}")
            return 0
        out = Path(args.out if args.out is not None else "trace.json")
        write_chrome_trace(capture, out)
        print(f"wrote {out}")
        return 0

    # trace run
    from repro.harness.runner import run_app

    make = widir_config if args.preset == "widir" else baseline_config
    config = make(num_cores=args.cores, seed=args.seed)
    obs_defaults = ObsConfig()
    config = replace(
        config,
        obs=ObsConfig(
            enabled=True,
            flight_recorder_depth=(
                args.depth
                if args.depth is not None
                else obs_defaults.flight_recorder_depth
            ),
            sample_interval=(
                args.sample_interval
                if args.sample_interval is not None
                else obs_defaults.sample_interval
            ),
        ),
    )
    sink: List = []
    result = run_app(
        args.app,
        config,
        args.memops,
        trace_seed=args.trace_seed,
        machine_sink=sink,
    )
    machine = sink[0]
    capture = machine.obs.capture(app=args.app)

    print(
        f"{args.app} on {args.preset} @ {args.cores} cores: "
        f"{result.cycles:,} cycles, {len(capture['spans'])} spans, "
        f"{len(capture['events']['events'])} recorder events"
    )
    orphans = capture.get("orphans", [])
    if orphans:
        print(f"WARNING: {len(orphans)} orphan spans (ids {orphans[:8]} ...)")

    if args.capture is not None:
        capture_path = Path(args.capture)
        capture_path.parent.mkdir(parents=True, exist_ok=True)
        capture_path.write_text(
            json.dumps(capture, sort_keys=True), encoding="utf-8"
        )
        print(f"wrote capture {capture_path}")

    trace = export_chrome_trace(capture)
    problems = validate_chrome_trace(trace)
    out = Path(args.out)
    write_chrome_trace(capture, out)
    tracks = counter_track_names(trace)
    print(f"wrote {out} ({len(trace['traceEvents'])} events)")
    print(f"counter tracks: {', '.join(tracks)}")
    if args.timeline:
        print(render_text_timeline(capture, limit=args.limit))
    if problems:
        for problem in problems[:10]:
            print(f"trace validation problem: {problem}", file=sys.stderr)
        return 1
    return 1 if orphans else 0


def _cmd_apps(_args: argparse.Namespace) -> int:
    print(f"{'app':14s} {'suite':8s} {'paper MPKI':>10s} {'sharing mix'}")
    for name in ALL_APPS:
        profile = APP_PROFILES[name]
        mix = ", ".join(f"{s}w x{w:.2f}" for s, w in profile.sharing_mix)
        print(f"{name:14s} {profile.suite:8s} {profile.paper_mpki:>10.2f} {mix}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "apps": _cmd_apps,
        "profile": _cmd_profile,
        "verify": _cmd_verify,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
