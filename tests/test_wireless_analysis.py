"""Tests for the analytical wireless channel model, cross-checked against
the event-driven simulator."""

import pytest

from repro.config.system import WirelessConfig
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.stats.collectors import StatsRegistry
from repro.wireless.analysis import (
    channel_capacity,
    collision_probability,
    estimate_channel,
    expected_write_cycles,
    tone_ack_latency,
)
from repro.wireless.channel import WirelessDataChannel
from repro.wireless.frames import WirelessFrame


class TestClosedForms:
    def test_capacity_is_inverse_frame_time(self):
        config = WirelessConfig()
        assert channel_capacity(config) == pytest.approx(1.0 / 6.0)

    def test_collision_probability_monotone_in_contenders(self):
        values = [collision_probability(n) for n in (1, 2, 4, 8, 16)]
        assert values[0] == 0.0
        assert all(a < b for a, b in zip(values, values[1:]))
        assert values[-1] < 1.0

    def test_expected_cost_grows_with_contention(self):
        config = WirelessConfig()
        quiet = expected_write_cycles(config, 1.0)
        busy = expected_write_cycles(config, 8.0)
        assert quiet == pytest.approx(2.0)  # header only, no collisions
        assert busy > 4 * quiet

    def test_estimate_reports_saturation(self):
        config = WirelessConfig()
        est = estimate_channel(config, writes_per_cycle=0.5)
        assert est.utilization > 1.0
        assert est.collision_probability > 0.5

    def test_tone_ack_independent_of_node_count(self):
        config = WirelessConfig()
        assert tone_ack_latency(4, config, 10) == tone_ack_latency(64, config, 10)
        assert tone_ack_latency(64, config, 10) == 11


class TestCrossValidation:
    """The analytical curve must track the event-driven channel."""

    def _measure(self, num_nodes, interarrival, frames=300):
        """Offered load: one frame every ``interarrival`` cycles, with a
        deterministic jitter so senders do not start in lockstep."""
        sim = Simulator(11)
        config = WirelessConfig()
        stats = StatsRegistry()
        channel = WirelessDataChannel(
            sim, config, num_nodes, stats, DeterministicRng(5)
        )
        channel.register_receiver(0, lambda f: None)
        jitter = DeterministicRng(9)
        for i in range(frames):
            at = i * interarrival + jitter.randint(0, max(1, interarrival // 2))
            sim.schedule(
                at,
                lambda i=i: channel.transmit(
                    WirelessFrame("WirUpd", i % num_nodes, 0x100 + i % 4, 0, i)
                ),
            )
        sim.run(max_events=5_000_000)
        return channel.collision_probability

    def test_light_load_has_low_collisions(self):
        measured = self._measure(num_nodes=4, interarrival=60)
        assert measured < 0.35

    def test_heavy_load_has_high_collisions(self):
        light = self._measure(num_nodes=16, interarrival=40)
        heavy = self._measure(num_nodes=16, interarrival=2)
        assert heavy > light

    def test_analytical_ordering_matches_simulation(self):
        config = WirelessConfig()
        analytic_light = estimate_channel(config, 0.01).collision_probability
        analytic_heavy = estimate_channel(config, 0.2).collision_probability
        assert analytic_light < analytic_heavy
        sim_light = self._measure(num_nodes=8, interarrival=80)
        sim_heavy = self._measure(num_nodes=8, interarrival=3)
        assert sim_light < sim_heavy
