"""Tests for the BRS wireless data channel: arbitration, collisions,
backoff, jamming, cancellation, and the serialization-point contract."""

import pytest

from repro.config.system import WirelessConfig
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.stats.collectors import StatsRegistry
from repro.wireless.channel import WirelessDataChannel
from repro.wireless.frames import WirelessFrame


def make_channel(num_nodes=4, **config_kwargs):
    sim = Simulator(7)
    config = WirelessConfig(**config_kwargs)
    stats = StatsRegistry()
    channel = WirelessDataChannel(
        sim, config, num_nodes, stats, DeterministicRng(3)
    )
    return sim, channel, stats


def upd(src, line=0x100, word=0, value=1):
    return WirelessFrame("WirUpd", src, line, word, value)


class TestBasicTransmission:
    def test_sole_frame_delivered_to_all_nodes(self):
        sim, channel, stats = make_channel()
        heard = []
        for node in range(4):
            channel.register_receiver(node, lambda f, n=node: heard.append(n))
        channel.transmit(upd(0))
        sim.run()
        assert sorted(heard) == [0, 1, 2, 3]
        assert stats.get_counter("wnoc.frames") == 1
        assert stats.get_counter("wnoc.collisions") == 0

    def test_commit_precedes_delivery(self):
        sim, channel, _ = make_channel()
        events = []
        channel.register_receiver(0, lambda f: events.append(("deliver", sim.now)))
        channel.transmit(
            upd(0),
            on_commit=lambda: events.append(("commit", sim.now)),
            on_delivered=lambda: events.append(("done", sim.now)),
        )
        sim.run()
        kinds = [k for k, _ in events]
        assert kinds == ["commit", "deliver", "done"]
        commit_time = events[0][1]
        deliver_time = events[1][1]
        # Commit at preamble+collision-detect; delivery at frame end.
        assert commit_time == 2
        assert deliver_time == 6

    def test_back_to_back_frames_serialize(self):
        sim, channel, _ = make_channel()
        done = []
        channel.register_receiver(0, lambda f: None)
        channel.transmit(upd(0), on_delivered=lambda: done.append(sim.now))
        sim.run()
        channel.transmit(upd(1), on_delivered=lambda: done.append(sim.now))
        sim.run()
        assert done[1] - done[0] >= 6  # one full frame apart


class TestCollisions:
    def test_simultaneous_senders_collide_then_succeed(self):
        sim, channel, stats = make_channel()
        delivered = []
        channel.register_receiver(0, lambda f: delivered.append(f.src))
        channel.transmit(upd(0))
        channel.transmit(upd(1))
        sim.run()
        assert sorted(delivered) == [0, 1]
        assert stats.get_counter("wnoc.collisions") >= 2  # both contenders

    def test_no_two_successful_frames_overlap(self):
        sim, channel, _ = make_channel(num_nodes=8)
        spans = []
        starts = {}

        def commit_for(i):
            def cb():
                starts[i] = sim.now - 2  # frame started 2 cycles before commit

            return cb

        def done_for(i):
            def cb():
                spans.append((starts[i], sim.now))

            return cb

        channel.register_receiver(0, lambda f: None)
        for i in range(8):
            channel.transmit(upd(i % 8, value=i), commit_for(i), done_for(i))
        sim.run()
        assert len(spans) == 8
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2, f"frames overlap: ({s1},{e1}) vs ({s2},{e2})"

    def test_collision_probability_metric(self):
        sim, channel, _ = make_channel()
        channel.register_receiver(0, lambda f: None)
        channel.transmit(upd(0))
        channel.transmit(upd(1))
        sim.run()
        assert 0.0 < channel.collision_probability < 1.0


class TestJamming:
    def test_jammed_line_blocked_until_unjam(self):
        sim, channel, stats = make_channel()
        delivered = []
        channel.register_receiver(0, lambda f: delivered.append(sim.now))
        channel.jam(0x100)
        channel.transmit(upd(0, line=0x100))
        sim.run(until=200)
        assert delivered == []
        assert stats.get_counter("wnoc.jams") > 0
        channel.unjam(0x100)
        sim.run()
        assert len(delivered) == 1

    def test_other_lines_unaffected_by_jam(self):
        sim, channel, _ = make_channel()
        delivered = []
        channel.register_receiver(0, lambda f: delivered.append(f.line))
        channel.jam(0x100)
        channel.transmit(upd(0, line=0x200))
        sim.run(until=100)
        assert delivered == [0x200]

    def test_directory_frames_pass_their_own_jam(self):
        """BrWirUpgr/WirDwgr/WirInv are not jammable even for the jammed line."""
        sim, channel, _ = make_channel()
        delivered = []
        channel.register_receiver(0, lambda f: delivered.append(f.kind))
        channel.jam(0x100)
        channel.transmit(WirelessFrame("BrWirUpgr", 2, 0x100))
        sim.run(until=100)
        assert delivered == ["BrWirUpgr"]

    def test_partial_address_jamming_false_positives(self):
        sim = Simulator(7)
        channel = WirelessDataChannel(
            sim, WirelessConfig(), 4, StatsRegistry(), DeterministicRng(3),
            jam_address_bits=4,
        )
        channel.register_receiver(0, lambda f: None)
        channel.jam(0x10)
        # 0x30 shares the low 4 bits with 0x10: jammed (false positive).
        assert channel.is_jammed(0x30)
        assert not channel.is_jammed(0x31)


class TestCancellation:
    def test_cancel_before_commit_suppresses_frame(self):
        sim, channel, stats = make_channel()
        delivered = []
        channel.register_receiver(0, lambda f: delivered.append(f))
        request = channel.transmit(upd(0))
        assert request.cancel()
        sim.run()
        assert delivered == []
        assert stats.get_counter("wnoc.frames") == 0

    def test_cancel_after_commit_fails(self):
        sim, channel, _ = make_channel()
        channel.register_receiver(0, lambda f: None)
        request = channel.transmit(upd(0))
        sim.run(until=3)  # past the commit point (cycle 2)
        assert not request.cancel()
        sim.run()
        assert request.committed

    def test_cancelled_mid_arbitration_wastes_slot_only(self):
        sim, channel, stats = make_channel()
        delivered = []
        channel.register_receiver(0, lambda f: delivered.append(f.src))
        request = channel.transmit(upd(0))
        channel.transmit(upd(1))
        # Cancel the first at cycle 1 (post-arbitration, pre-commit).
        sim.schedule(1, request.cancel)
        sim.run()
        assert delivered.count(1) == 1
        assert 0 not in delivered


class TestLiveness:
    def test_every_frame_eventually_delivers_under_contention(self):
        sim, channel, _ = make_channel(num_nodes=8)
        delivered = []
        channel.register_receiver(0, lambda f: delivered.append(f.value))
        for i in range(30):
            channel.transmit(upd(i % 8, value=i))
        sim.run(max_events=100_000)
        assert sorted(delivered) == list(range(30))

    def test_no_duplicate_deliveries(self):
        """Regression: a stale arbitration event once re-transmitted an
        in-flight frame, double-delivering it."""
        sim, channel, _ = make_channel(num_nodes=8)
        delivered = []
        channel.register_receiver(0, lambda f: delivered.append(f.value))
        # Interleave transmissions over time to create stale arbitration
        # events landing at end-of-frame cycles.
        for i in range(20):
            sim.schedule(i * 3, lambda i=i: channel.transmit(upd(i % 8, value=i)))
        sim.run(max_events=100_000)
        assert sorted(delivered) == list(range(20))
        assert len(delivered) == len(set(delivered))
