"""Tests for the statistics collectors and report rendering."""

from hypothesis import given, strategies as st

import pytest

from repro.stats.collectors import (
    BinnedHistogram,
    Counter,
    ExactHistogram,
    Histogram,
    LatencyStat,
    StatsRegistry,
)
from repro.stats.report import (
    format_percentile_table,
    format_table,
    normalize,
    percentile_summary,
)


class TestCounter:
    def test_add_and_reset(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_merge(self):
        a, b = Counter("a"), Counter("b")
        a.add(3)
        b.add(4)
        a.merge(b)
        assert a.value == 7
        assert b.value == 4  # merge never mutates the source


class TestLatencyStat:
    def test_accumulation(self):
        stat = LatencyStat("lat")
        for value in (10, 20, 30):
            stat.record(value)
        assert stat.count == 3
        assert stat.total == 60
        assert stat.mean == 20
        assert stat.min == 10
        assert stat.max == 30

    def test_empty_mean_is_zero(self):
        assert LatencyStat("lat").mean == 0.0

    def test_merge(self):
        a, b = LatencyStat("a"), LatencyStat("b")
        a.record(5)
        b.record(15)
        a.merge(b)
        assert a.count == 2
        assert a.total == 20
        assert a.min == 5
        assert a.max == 15

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=50))
    def test_property_bounds(self, values):
        stat = LatencyStat("lat")
        for value in values:
            stat.record(value)
        assert stat.min == min(values)
        assert stat.max == max(values)
        assert stat.total == sum(values)


class TestBinnedHistogram:
    BINS = ((0, 5), (6, 10), (11, 25), (26, 49), (50, None))

    def test_paper_bins(self):
        hist = BinnedHistogram("sharers", self.BINS)
        for value in (0, 5, 6, 25, 49, 50, 1000):
            hist.record(value)
        assert hist.counts == [2, 1, 1, 1, 2]
        assert hist.total == 7

    def test_fractions_sum_to_one(self):
        hist = BinnedHistogram("sharers", self.BINS)
        for value in range(100):
            hist.record(value)
        assert abs(sum(hist.fractions()) - 1.0) < 1e-9

    def test_labels(self):
        hist = BinnedHistogram("sharers", self.BINS)
        assert hist.labels() == ["0-5", "6-10", "11-25", "26-49", "50+"]

    def test_empty_fractions(self):
        hist = BinnedHistogram("sharers", self.BINS)
        assert hist.fractions() == [0.0] * 5

    @given(st.lists(st.integers(0, 200), max_size=100))
    def test_property_total_conservation(self, values):
        hist = BinnedHistogram("h", self.BINS)
        for value in values:
            hist.record(value)
        assert hist.total == len(values)

    def test_merge(self):
        a = BinnedHistogram("a", self.BINS)
        b = BinnedHistogram("b", self.BINS)
        a.record(3)
        b.record(7)
        b.record(60)
        a.merge(b)
        assert a.counts == [1, 1, 0, 0, 1]
        assert a.total == 3

    def test_merge_rejects_mismatched_bins(self):
        a = BinnedHistogram("a", self.BINS)
        b = BinnedHistogram("b", ((0, 1), (2, None)))
        with pytest.raises(ValueError):
            a.merge(b)


class TestHistogram:
    def test_empty(self):
        hist = Histogram("h")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0

    def test_single_value(self):
        hist = Histogram("h")
        hist.record(37)
        for p in (0, 50, 99, 100):
            assert hist.percentile(p) == 37.0

    def test_percentiles_clamped_to_observed_range(self):
        hist = Histogram("h")
        for value in (10, 11, 12, 13, 200):
            hist.record(value)
        assert hist.percentile(0) == 10.0
        assert hist.percentile(100) == 200.0
        assert 10.0 <= hist.percentile(50) <= 200.0

    def test_mean_exact(self):
        hist = Histogram("h")
        for value in (4, 8, 12):
            hist.record(value)
        assert hist.mean == 8.0
        assert hist.min == 4
        assert hist.max == 12

    def test_merge(self):
        a, b = Histogram("a"), Histogram("b")
        a.record(5)
        b.record(500)
        a.merge(b)
        assert a.count == 2
        assert a.min == 5
        assert a.max == 500
        assert a.total == 505

    def test_merge_empty_is_noop(self):
        a = Histogram("a")
        a.record(9)
        a.merge(Histogram("b"))
        assert a.count == 1
        assert a.percentile(50) == 9.0

    def test_roundtrip(self):
        hist = Histogram("h")
        for value in (1, 2, 3, 1000, 1_000_000):
            hist.record(value)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.count == hist.count
        assert clone.total == hist.total
        assert clone.min == hist.min
        assert clone.max == hist.max
        for p in (50, 95, 99):
            assert clone.percentile(p) == hist.percentile(p)

    @given(st.lists(st.integers(0, 2**40), min_size=1, max_size=200))
    def test_property_percentile_bounds(self, values):
        hist = Histogram("h")
        for value in values:
            hist.record(value)
        assert hist.count == len(values)
        assert hist.total == sum(values)
        previous = hist.percentile(0)
        for p in (25, 50, 75, 90, 95, 99, 100):
            current = hist.percentile(p)
            # monotone and within the observed range
            assert previous <= current <= max(values)
            assert current >= min(values)
            previous = current

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=100))
    def test_property_bucket_error_bound(self, values):
        """A percentile estimate lands within its power-of-two bucket, so
        the relative error against the exact order statistic is < 2x."""
        hist = Histogram("h")
        for value in values:
            hist.record(value)
        exact = sorted(values)[(len(values) - 1) // 2]
        estimate = hist.percentile(50)
        if exact > 0:
            assert estimate <= 2 * exact + 1
            assert estimate >= exact / 2 - 1


class TestExactHistogram:
    def test_mean(self):
        hist = ExactHistogram("h")
        hist.record(2, weight=3)
        hist.record(8)
        assert hist.total == 4
        assert hist.mean() == (2 * 3 + 8) / 4

    def test_items_sorted(self):
        hist = ExactHistogram("h")
        for value in (5, 1, 9, 1):
            hist.record(value)
        assert list(hist.items()) == [(1, 2), (5, 1), (9, 1)]

    def test_merge(self):
        a, b = ExactHistogram("a"), ExactHistogram("b")
        a.record(1, weight=2)
        b.record(1)
        b.record(4)
        a.merge(b)
        assert list(a.items()) == [(1, 3), (4, 1)]
        assert a.total == 4


class TestStatsRegistry:
    def test_same_name_returns_same_collector(self):
        registry = StatsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.latency("l") is registry.latency("l")

    def test_get_counter_default_zero(self):
        registry = StatsRegistry()
        assert registry.get_counter("missing") == 0

    def test_counters_snapshot(self):
        registry = StatsRegistry()
        registry.counter("a").add(3)
        registry.counter("b").add(1)
        assert registry.counters() == {"a": 3, "b": 1}


class TestReport:
    def test_normalize(self):
        out = normalize({"x": 50, "y": 10}, {"x": 100, "y": 0})
        assert out == {"x": 0.5, "y": 0.0}

    def test_format_table_alignment(self):
        text = format_table(
            ["app", "value"], [["radiosity", 0.78], ["fft", 1.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "radiosity" in text
        assert "0.780" in text

    def test_format_table_mixed_types(self):
        text = format_table(["a"], [[1], [2.5], ["x"]])
        assert "2.500" in text
        assert "x" in text

    def test_percentile_summary(self):
        hist = Histogram("lat")
        for value in range(1, 101):
            hist.record(value)
        summary = percentile_summary(hist)
        assert summary["count"] == 100
        assert summary["min"] == 1
        assert summary["max"] == 100
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert set(summary) == {
            "count", "mean", "min", "max", "p50", "p95", "p99",
        }

    def test_percentile_summary_empty(self):
        assert percentile_summary(Histogram("lat")) == {}

    def test_format_percentile_table(self):
        hist = Histogram("lat")
        for value in (10, 20, 40):
            hist.record(value)
        text = format_percentile_table({"loads": hist}, title="latency")
        assert "latency" in text
        assert "loads" in text
        assert "p99" in text
