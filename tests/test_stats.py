"""Tests for the statistics collectors and report rendering."""

from hypothesis import given, strategies as st

from repro.stats.collectors import (
    BinnedHistogram,
    Counter,
    ExactHistogram,
    LatencyStat,
    StatsRegistry,
)
from repro.stats.report import format_table, normalize


class TestCounter:
    def test_add_and_reset(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0


class TestLatencyStat:
    def test_accumulation(self):
        stat = LatencyStat("lat")
        for value in (10, 20, 30):
            stat.record(value)
        assert stat.count == 3
        assert stat.total == 60
        assert stat.mean == 20
        assert stat.min == 10
        assert stat.max == 30

    def test_empty_mean_is_zero(self):
        assert LatencyStat("lat").mean == 0.0

    def test_merge(self):
        a, b = LatencyStat("a"), LatencyStat("b")
        a.record(5)
        b.record(15)
        a.merge(b)
        assert a.count == 2
        assert a.total == 20
        assert a.min == 5
        assert a.max == 15

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=50))
    def test_property_bounds(self, values):
        stat = LatencyStat("lat")
        for value in values:
            stat.record(value)
        assert stat.min == min(values)
        assert stat.max == max(values)
        assert stat.total == sum(values)


class TestBinnedHistogram:
    BINS = ((0, 5), (6, 10), (11, 25), (26, 49), (50, None))

    def test_paper_bins(self):
        hist = BinnedHistogram("sharers", self.BINS)
        for value in (0, 5, 6, 25, 49, 50, 1000):
            hist.record(value)
        assert hist.counts == [2, 1, 1, 1, 2]
        assert hist.total == 7

    def test_fractions_sum_to_one(self):
        hist = BinnedHistogram("sharers", self.BINS)
        for value in range(100):
            hist.record(value)
        assert abs(sum(hist.fractions()) - 1.0) < 1e-9

    def test_labels(self):
        hist = BinnedHistogram("sharers", self.BINS)
        assert hist.labels() == ["0-5", "6-10", "11-25", "26-49", "50+"]

    def test_empty_fractions(self):
        hist = BinnedHistogram("sharers", self.BINS)
        assert hist.fractions() == [0.0] * 5

    @given(st.lists(st.integers(0, 200), max_size=100))
    def test_property_total_conservation(self, values):
        hist = BinnedHistogram("h", self.BINS)
        for value in values:
            hist.record(value)
        assert hist.total == len(values)


class TestExactHistogram:
    def test_mean(self):
        hist = ExactHistogram("h")
        hist.record(2, weight=3)
        hist.record(8)
        assert hist.total == 4
        assert hist.mean() == (2 * 3 + 8) / 4

    def test_items_sorted(self):
        hist = ExactHistogram("h")
        for value in (5, 1, 9, 1):
            hist.record(value)
        assert list(hist.items()) == [(1, 2), (5, 1), (9, 1)]


class TestStatsRegistry:
    def test_same_name_returns_same_collector(self):
        registry = StatsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.latency("l") is registry.latency("l")

    def test_get_counter_default_zero(self):
        registry = StatsRegistry()
        assert registry.get_counter("missing") == 0

    def test_counters_snapshot(self):
        registry = StatsRegistry()
        registry.counter("a").add(3)
        registry.counter("b").add(1)
        assert registry.counters() == {"a": 3, "b": 1}


class TestReport:
    def test_normalize(self):
        out = normalize({"x": 50, "y": 10}, {"x": 100, "y": 0})
        assert out == {"x": 0.5, "y": 0.0}

    def test_format_table_alignment(self):
        text = format_table(
            ["app", "value"], [["radiosity", 0.78], ["fft", 1.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "radiosity" in text
        assert "0.780" in text

    def test_format_table_mixed_types(self):
        text = format_table(["a"], [[1], [2.5], ["x"]])
        assert "2.500" in text
        assert "x" in text
