"""Tests for the CLI and result serialization."""

import json

import pytest

from repro.cli import main
from repro.config import widir_config
from repro.harness.results_io import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.harness.runner import run_app


@pytest.fixture(scope="module")
def sample_result():
    return run_app("volrend", widir_config(num_cores=8), 200)


class TestSerialization:
    def test_roundtrip_preserves_metrics(self, sample_result):
        restored = result_from_dict(result_to_dict(sample_result))
        assert restored.cycles == sample_result.cycles
        assert restored.mpki == sample_result.mpki
        assert restored.sharer_histogram == sample_result.sharer_histogram
        assert restored.energy.total == sample_result.energy.total
        assert restored.config.protocol == "widir"
        assert restored.config.num_cores == 8

    def test_dict_is_json_serializable(self, sample_result):
        text = json.dumps(result_to_dict(sample_result))
        assert "volrend" in text

    def test_save_and_load_file(self, sample_result, tmp_path):
        path = tmp_path / "results.json"
        save_results({"volrend/widir/8": sample_result}, path)
        loaded = load_results(path)
        assert set(loaded) == {"volrend/widir/8"}
        assert loaded["volrend/widir/8"].cycles == sample_result.cycles


class TestCli:
    def test_run_command(self, capsys):
        assert main(["run", "volrend", "--cores", "8", "--memops", "150"]) == 0
        out = capsys.readouterr().out
        assert "L1 MPKI" in out
        assert "wireless writes" in out

    def test_run_json_output(self, capsys):
        assert main(
            ["run", "volrend", "--cores", "8", "--memops", "150", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "volrend"
        assert payload["cycles"] > 0

    def test_run_baseline_protocol(self, capsys):
        assert main(
            ["run", "volrend", "--protocol", "baseline", "--cores", "8",
             "--memops", "150"]
        ) == 0
        assert "baseline" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare", "volrend", "--cores", "8", "--memops", "150"]) == 0
        out = capsys.readouterr().out
        assert "WiDir speedup" in out
        assert "energy ratio" in out

    def test_figure_command(self, capsys):
        assert main(
            ["figure", "table5", "--apps", "volrend", "--cores", "16",
             "--memops", "150"]
        ) == 0
        assert "Table V" in capsys.readouterr().out

    def test_figure_rejects_unknown_app(self, capsys):
        assert main(
            ["figure", "fig6", "--apps", "doom", "--cores", "8", "--memops", "100"]
        ) == 2
        assert "unknown apps" in capsys.readouterr().err

    def test_apps_command_lists_all_twenty(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert out.count("splash3") == 13
        assert out.count("parsec") == 7

    def test_unknown_app_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "doom"])

    def test_profile_command_writes_report(self, capsys, tmp_path):
        out_file = tmp_path / "prof" / "report.txt"
        assert main(
            [
                "profile", "volrend", "--cores", "8", "--memops", "100",
                "--top", "5", "--output", str(out_file),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Ordered by: internal time" in out
        text = out_file.read_text()
        assert "volrend on widir @ 8 cores" in text
        assert "simulated cycles=" in text

    def test_profile_command_stdout_only(self, capsys):
        assert main(
            [
                "profile", "volrend", "--protocol", "baseline", "--cores", "8",
                "--memops", "100", "--sort", "cumulative", "--cold",
                "--top", "5", "--output", "-",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Ordered by: cumulative time" in out
        assert "wrote" not in out


class TestTraceCli:
    def test_trace_run_export_summarize(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        capture_path = tmp_path / "capture.json"
        assert main(
            [
                "trace", "run", "--app", "radiosity", "--cores", "8",
                "--memops", "200", "--out", str(trace_path),
                "--capture", str(capture_path), "--timeline", "--limit", "10",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "spans" in out
        assert "counter tracks:" in out
        assert trace_path.exists() and capture_path.exists()

        assert main(["trace", "summarize", str(capture_path)]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "flight recorder:" in out

        text_path = tmp_path / "timeline.txt"
        assert main(
            [
                "trace", "export", str(capture_path), "--format", "text",
                "--out", str(text_path), "--limit", "20",
            ]
        ) == 0
        assert text_path.exists()

        chrome_path = tmp_path / "chrome.json"
        assert main(
            [
                "trace", "export", str(capture_path), "--format", "chrome",
                "--out", str(chrome_path),
            ]
        ) == 0
        from repro.obs import validate_chrome_trace_file

        assert validate_chrome_trace_file(chrome_path) == []

    def test_run_command_prints_latency_percentiles(self, capsys):
        assert main(["run", "volrend", "--cores", "8", "--memops", "150"]) == 0
        out = capsys.readouterr().out
        assert "latency p50/95/99" in out
