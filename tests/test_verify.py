"""Tests for the protocol verification subsystem (repro.verify).

Covers all three pillars — the litmus runner, the fault-injecting fuzz
driver with online invariant checking, and replayable failure artifacts —
plus the *mutation smoke test*: a seeded re-introduction of a known-wrong
behaviour (disabled jam NACKs, lost tone drops) must be caught by a
bounded campaign and produce a shrunk artifact that still reproduces.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.config.system import SystemConfig
from repro.engine.errors import ProtocolError
from repro.harness.runner import run_app
from repro.system import Manycore
from repro.verify.artifacts import FailureArtifact, shrink_trial
from repro.verify.fuzz import (
    CAMPAIGNS,
    TrialSpec,
    execute_trial,
    generate_trial,
    run_campaign,
)
from repro.verify.litmus import (
    LitmusTest,
    ld,
    litmus_suite,
    run_litmus,
    st,
    suite_configs,
)
from repro.verify.mutations import MUTATIONS, apply_mutation


# ------------------------------------------------------------------ litmus


def test_litmus_suite_has_classic_shapes_and_threshold_variants():
    names = {test.name for test in litmus_suite()}
    assert {"SB", "MP", "CoRR", "IRIW", "2+2W", "ATOM"} <= names
    assert any(name.endswith("+threshold") for name in names)


@pytest.mark.parametrize("label_config", suite_configs(num_cores=8), ids=lambda lc: lc[0])
def test_litmus_clean_on_all_configs(label_config):
    label, config = label_config
    for test in litmus_suite():
        result = run_litmus(test, config, schedules=3, seed=1, config_label=label)
        assert result.ok, (test.name, label, result.violations[:2])


def test_litmus_threshold_variant_exercises_w_state():
    """The +threshold variants must actually cross MaxWiredSharers."""
    _, config = suite_configs(num_cores=8)[2]  # widir-mws1
    variant = next(t for t in litmus_suite() if t.name == "MP+threshold")
    result = run_litmus(variant, config, schedules=4, seed=0)
    assert result.ok, result.violations[:2]
    assert result.s_to_w_transitions > 0


def test_litmus_detects_a_planted_forbidden_outcome():
    """A test whose 'forbidden' set covers every SC outcome must fail —
    proving the runner's predicate machinery actually fires."""
    impossible = LitmusTest(
        name="planted",
        programs=[[st("x", 1)], [ld("x")]],
        # Both SC-legal observations declared forbidden:
        forbidden=[{0: 0}, {0: 1}],
    )
    config = SystemConfig(num_cores=2, protocol="baseline")
    result = run_litmus(impossible, config, schedules=2, seed=0)
    assert not result.ok
    assert any("forbidden outcome" in v for v in result.violations)


def test_litmus_serialization_roundtrip():
    for test in litmus_suite():
        clone = LitmusTest.from_dict(json.loads(json.dumps(test.to_dict())))
        assert clone.programs == test.programs
        assert clone.forbidden == test.forbidden
        assert clone.final == test.final


# ---------------------------------------------------------- online monitor


def test_online_monitor_is_timing_neutral():
    """check_interval > 0 must not change simulated behaviour."""
    config = SystemConfig(num_cores=8, protocol="widir")
    plain = run_app("radiosity", config, memops_per_core=150, trace_seed=3)
    watched = run_app(
        "radiosity",
        replace(config, check_interval=100),
        memops_per_core=150,
        trace_seed=3,
    )
    assert plain.cycles == watched.cycles
    assert plain.read_misses == watched.read_misses


def test_online_monitor_flags_violation_at_cycle():
    """A seeded mutation must be blamed mid-run with a cycle stamp."""
    spec = generate_trial(seed=3, index=0, num_cores=8, ops_per_core=40)
    spec.mutation = "no_home_wirupd_merge"
    result = execute_trial(spec)
    assert not result.ok
    assert "[online @ cycle" in result.failure


def test_monitor_does_not_wedge_drain_loop():
    """The monitor must never keep an otherwise-empty queue alive."""
    config = SystemConfig(num_cores=4, protocol="widir", check_interval=10)
    machine = Manycore(config)
    done = {"ok": False}
    machine.caches[0].store(0x40, 7, lambda: done.__setitem__("ok", True))
    machine.run(max_events=100_000)  # must terminate
    assert done["ok"]
    assert machine.monitor is not None and machine.monitor.sweeps >= 1


# -------------------------------------------------------------------- fuzz


def test_fuzz_trial_deterministic():
    spec = generate_trial(seed=7, index=2, num_cores=8, ops_per_core=30)
    first = execute_trial(spec)
    second = execute_trial(spec)
    assert first.ok, first.failure
    assert (first.digest, first.cycles) == (second.digest, second.cycles)


def test_fuzz_campaign_smoke_clean_and_deterministic():
    first = run_campaign("smoke", seed=0, trials=4)
    assert first.ok, first.failures
    second = run_campaign("smoke", seed=0, trials=4)
    assert first.digest == second.digest


def test_fuzz_spec_roundtrip():
    spec = generate_trial(seed=5, index=1)
    clone = TrialSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert clone.to_dict() == spec.to_dict()
    assert clone.programs == spec.programs


def test_injectors_preserve_correctness():
    """Cranked-up injectors on a correct machine must never fail a trial."""
    spec = generate_trial(seed=11, index=0, num_cores=8, ops_per_core=30)
    spec.jam_storm = [(50 + 40 * i, i % 4, 60) for i in range(10)]
    spec.tone_jitter = 8
    spec.mesh_jitter = 5
    result = execute_trial(spec)
    assert result.ok, result.failure


# ------------------------------------------------- mutation smoke testing


def test_mutations_registry_is_wired():
    assert {"no_jam_nack", "lost_tone_drop", "no_home_wirupd_merge"} <= set(
        MUTATIONS
    )
    machine = Manycore(SystemConfig(num_cores=4, protocol="widir"))
    with pytest.raises(KeyError):
        apply_mutation(machine, "definitely_not_a_mutation")
    machine_baseline = Manycore(SystemConfig(num_cores=4, protocol="baseline"))
    with pytest.raises(ValueError):
        apply_mutation(machine_baseline, "no_jam_nack")


def test_mutation_no_jam_nack_caught_with_shrunk_replayable_artifact(tmp_path):
    """The acceptance-criteria smoke: removing the jam NACK must fail a
    bounded campaign, shrink to a smaller reproducer, serialize to JSON,
    and replay to a failure from the loaded artifact."""
    captured = {}

    def on_trial(index, spec, trial):
        if not trial.ok and "spec" not in captured:
            captured["index"], captured["spec"], captured["why"] = (
                index,
                spec,
                trial.failure,
            )

    result = run_campaign(
        "smoke", seed=0, trials=4, mutation="no_jam_nack", on_trial=on_trial
    )
    assert not result.ok, "campaign failed to catch the disabled jam NACK"
    assert "spec" in captured

    spec = captured["spec"]
    assert spec.mutation == "no_jam_nack"  # recorded for replay
    shrunk = shrink_trial(spec, max_checks=60)
    assert 0 < shrunk.total_ops < spec.total_ops

    artifact = FailureArtifact(
        campaign="smoke",
        seed=0,
        trial_index=captured["index"],
        failure=captured["why"],
        spec=shrunk,
        shrunk=True,
        original_ops=spec.total_ops,
        shrunk_ops=shrunk.total_ops,
    )
    path = artifact.save(tmp_path / "artifact.json")
    loaded = FailureArtifact.load(path)
    replay = execute_trial(loaded.spec)
    assert not replay.ok
    # And the replay is itself deterministic:
    assert execute_trial(loaded.spec).failure == replay.failure


def test_mutation_lost_tone_drop_deadlocks():
    spec = generate_trial(seed=1, index=0, num_cores=8, ops_per_core=30)
    spec.mutation = "lost_tone_drop"
    spec.max_events = 150_000  # bounded: the deadlock shows up fast
    result = execute_trial(spec)
    assert not result.ok
    assert "deadlock" in result.failure or "max_events" in result.failure


# ----------------------------------------------------------------- shrink


def test_shrink_requires_failure_to_reduce():
    """Shrinking a passing trial returns it unchanged (nothing 'fails')."""
    spec = generate_trial(seed=13, index=0, num_cores=4, ops_per_core=10)
    assert execute_trial(spec).ok
    shrunk = shrink_trial(spec, max_checks=20)
    assert shrunk.total_ops == spec.total_ops


def test_shrink_is_bounded():
    calls = {"n": 0}

    def check(_spec):
        calls["n"] += 1
        return "always fails"

    spec = generate_trial(seed=17, index=0, num_cores=8, ops_per_core=40)
    shrink_trial(spec, check=check, max_checks=25)
    # +1: the budget guard returns False without calling check again.
    assert calls["n"] <= 25


# -------------------------------------------------------------------- CLI


def test_cli_verify_smoke_subset(capsys):
    from repro.cli import main

    code = main(
        [
            "verify",
            "--campaign",
            "smoke",
            "--seed",
            "0",
            "--trials",
            "2",
            "--skip-litmus",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "campaign_digest=" in out


def test_cli_verify_replay_roundtrip(tmp_path, capsys):
    from repro.cli import main

    artifact_dir = tmp_path / "artifacts"
    code = main(
        [
            "verify",
            "--campaign",
            "smoke",
            "--seed",
            "0",
            "--trials",
            "1",
            "--skip-litmus",
            "--mutate",
            "no_jam_nack",
            "--no-shrink",
            "--artifact-dir",
            str(artifact_dir),
        ]
    )
    capsys.readouterr()
    assert code == 1  # mutation must fail the campaign
    artifacts = sorted(artifact_dir.glob("*.json"))
    assert artifacts, "failing campaign produced no artifact"
    replay_code = main(["verify", "replay", str(artifacts[0])])
    out = capsys.readouterr().out
    assert replay_code == 0
    assert "failure reproduced" in out


def test_cli_verify_rejects_unknown_campaign_and_mutation(capsys):
    from repro.cli import main

    assert main(["verify", "--campaign", "nope"]) == 2
    assert main(["verify", "--mutate", "nope"]) == 2
    capsys.readouterr()


def test_campaign_registry():
    assert "smoke" in CAMPAIGNS and "deep" in CAMPAIGNS
    assert CAMPAIGNS["smoke"].trials <= 12  # bounded for CI


# ------------------------------------------------------ checker refactor


def test_checker_per_line_helpers_match_global_check():
    """The per-line methods (used online) agree with the quiescent walk."""
    config = SystemConfig(num_cores=8, protocol="widir")
    run = run_app("radiosity", config, memops_per_core=100, trace_seed=5)
    assert run.cycles > 0  # the machine ran; per-line logic is exercised
    machine = Manycore(config)
    done = {"n": 0}
    for node in range(4):
        machine.caches[node].load(0x80, lambda _v: done.__setitem__("n", done["n"] + 1))
    machine.run(max_events=100_000)
    assert done["n"] == 4
    checker = machine.checker
    holders = checker._holders()
    for line, entries in holders.items():
        assert checker.line_holders(line) == entries
        checker.check_swmr_line(line, entries)
        checker.check_value_line(line, entries)
    machine.check_coherence()


def test_checker_online_error_carries_cycle_context():
    """Corrupt a cache copy by hand; the sweep must blame a cycle."""
    config = SystemConfig(num_cores=4, protocol="widir", check_interval=5)
    machine = Manycore(config)
    done = {"n": 0}
    for node in range(2):
        machine.caches[node].load(0x100, lambda _v: done.__setitem__("n", done["n"] + 1))
    machine.run(max_events=100_000)
    assert done["n"] == 2
    # Two shared copies now exist; corrupt one and poke the monitor.
    line = 0x100 // config.l1.line_bytes
    entry = machine.caches[0].array.lookup(line, touch=False)
    assert entry is not None
    entry.data[0] = 0xDEAD
    machine.monitor.touch(line)
    with pytest.raises(ProtocolError, match=r"\[online @ cycle"):
        machine.sim.run(max_events=10_000)
