"""Tests for the energy model."""

import pytest

from repro.config import baseline_config, widir_config
from repro.energy.models import EnergyBreakdown, EnergyModel
from repro.stats.collectors import StatsRegistry


def synthetic_stats(instructions=1_000_000, l1=300_000, llc=20_000, frames=0,
                    busy=0, tone_ops=0, hops=100_000, data_msgs=5_000,
                    messages=30_000):
    stats = StatsRegistry()
    stats.counter("core.total.instructions").add(instructions)
    stats.counter("l1.total.accesses").add(l1)
    stats.counter("dir.total.llc_accesses").add(llc)
    stats.counter("noc.total_hops").add(hops)
    stats.counter("noc.data_messages").add(data_msgs)
    stats.counter("noc.messages").add(messages)
    stats.counter("wnoc.frames").add(frames)
    stats.counter("wnoc.busy_cycles").add(busy)
    stats.counter("tone.operations").add(tone_ops)
    return stats


class TestBreakdown:
    def test_total_is_sum_of_components(self):
        breakdown = EnergyBreakdown(core=10, l1=2, l2_dir=4, noc=3, wnoc=1)
        assert breakdown.total == 20
        assert breakdown.as_dict() == {
            "core": 10, "l1": 2, "l2_dir": 4, "noc": 3, "wnoc": 1
        }

    def test_shares_sum_to_one(self):
        breakdown = EnergyBreakdown(core=10, l1=2, l2_dir=4, noc=3, wnoc=1)
        assert sum(breakdown.shares().values()) == pytest.approx(1.0)

    def test_zero_total_shares(self):
        breakdown = EnergyBreakdown(0, 0, 0, 0, 0)
        assert all(v == 0 for v in breakdown.shares().values())


class TestModel:
    def test_baseline_has_no_wnoc_energy(self):
        model = EnergyModel()
        breakdown = model.compute(
            baseline_config(num_cores=64), synthetic_stats(), cycles=100_000
        )
        assert breakdown.wnoc == 0.0
        assert breakdown.total > 0

    def test_widir_includes_wnoc_energy(self):
        model = EnergyModel()
        breakdown = model.compute(
            widir_config(num_cores=64),
            synthetic_stats(frames=1000, busy=8000, tone_ops=50),
            cycles=100_000,
        )
        assert breakdown.wnoc > 0

    def test_paper_like_baseline_shares(self):
        """A representative 64-core run lands near the paper's Figure 9
        Baseline decomposition: core ~60%, L1 ~5%, L2+dir ~20%, NoC ~15%."""
        model = EnergyModel()
        breakdown = model.compute(
            baseline_config(num_cores=64),
            synthetic_stats(
                instructions=2_000_000,
                l1=600_000,
                llc=60_000,
                hops=400_000,
                data_msgs=30_000,
                messages=120_000,
            ),
            cycles=60_000,
        )
        shares = breakdown.shares()
        assert 0.4 < shares["core"] < 0.75
        assert shares["l1"] < 0.15
        assert 0.05 < shares["l2_dir"] < 0.35
        assert 0.03 < shares["noc"] < 0.30

    def test_energy_scales_with_runtime(self):
        model = EnergyModel()
        config = baseline_config(num_cores=16)
        short = model.compute(config, synthetic_stats(), cycles=10_000)
        long = model.compute(config, synthetic_stats(), cycles=100_000)
        assert long.total > short.total

    def test_wnoc_idle_power_always_charged(self):
        """Power-gated idle is still nonzero (Table III: 26.9 mW)."""
        model = EnergyModel()
        breakdown = model.compute(
            widir_config(num_cores=16), synthetic_stats(), cycles=50_000
        )
        assert breakdown.wnoc >= 16 * 50_000 * model.wnoc_idle_mw * 0.9

    def test_more_wireless_traffic_more_energy(self):
        model = EnergyModel()
        config = widir_config(num_cores=16)
        quiet = model.compute(
            config, synthetic_stats(frames=10, busy=60), cycles=50_000
        )
        loud = model.compute(
            config, synthetic_stats(frames=5000, busy=30_000), cycles=50_000
        )
        assert loud.wnoc > quiet.wnoc
