"""Tests for the Manycore assembly: routing, wiring, and determinism."""

import pytest

from repro.coherence import messages as mk
from repro.config import baseline_config, widir_config
from repro.noc.message import Message
from repro.system import Manycore
from repro.wireless.frames import WirelessFrame


class TestConstruction:
    def test_one_controller_pair_per_tile(self):
        machine = Manycore(widir_config(num_cores=8))
        assert len(machine.caches) == 8
        assert len(machine.directories) == 8
        assert len(machine.memory_controllers) == 4

    def test_baseline_has_no_wireless_parts(self):
        machine = Manycore(baseline_config(num_cores=8))
        assert machine.wireless is None
        assert machine.tone is None
        for cache in machine.caches:
            assert cache.wireless is None

    def test_widir_shares_one_channel(self):
        machine = Manycore(widir_config(num_cores=8))
        channels = {id(cache.wireless) for cache in machine.caches}
        channels |= {id(d.wireless) for d in machine.directories}
        assert channels == {id(machine.wireless)}

    def test_invalid_config_rejected_at_construction(self):
        from dataclasses import replace
        from repro.engine.errors import ConfigurationError

        bad = replace(widir_config(num_cores=8), protocol="nonsense")
        with pytest.raises(ConfigurationError):
            Manycore(bad)


class TestMessageRouting:
    def test_directory_kinds_reach_directory(self):
        machine = Manycore(baseline_config(num_cores=4))
        hits = []
        directory = machine.directories[2]
        original = directory.handle_message
        directory.handle_message = lambda m: hits.append(m.kind) or original(m)
        machine.mesh.send(Message(mk.PUTS, 0, 2, 0x40))
        machine.run(max_events=10_000)
        assert hits == [mk.PUTS]

    def test_cache_kinds_reach_cache(self):
        machine = Manycore(baseline_config(num_cores=4))
        hits = []
        cache = machine.caches[3]
        original = cache.handle_message
        cache.handle_message = lambda m: hits.append(m.kind) or original(m)
        machine.mesh.send(Message(mk.PUT_ACK, 0, 3, 0x40))
        machine.run(max_events=10_000)
        assert hits == [mk.PUT_ACK]

    def test_frames_reach_both_cache_and_directory(self):
        machine = Manycore(widir_config(num_cores=4))
        seen = []
        cache, directory = machine.caches[1], machine.directories[1]
        cache_orig, dir_orig = cache.handle_frame, directory.handle_frame
        cache.handle_frame = lambda f: seen.append("cache") or cache_orig(f)
        directory.handle_frame = lambda f: seen.append("dir") or dir_orig(f)
        machine.wireless.transmit(WirelessFrame(mk.WIR_UPD, 0, 0x40, 0, 1))
        machine.run(max_events=10_000)
        assert seen == ["cache", "dir"]


class TestDeterminismAcrossBuilds:
    def test_same_seed_same_machine_behaviour(self):
        def run_once():
            machine = Manycore(widir_config(num_cores=8, seed=77))
            done = []
            for core in range(8):
                machine.caches[core].rmw(0x9000, lambda _o, c=core: done.append(c))
            machine.run(max_events=50_000_000)
            return machine.sim.now, machine.sim.events_executed, tuple(done)

        assert run_once() == run_once()

    def test_different_core_counts_are_independent(self):
        small = Manycore(widir_config(num_cores=4, seed=1))
        large = Manycore(widir_config(num_cores=16, seed=1))
        for machine in (small, large):
            out = []
            machine.caches[0].store(0x5000, 1, lambda: out.append(1))
            machine.run(max_events=1_000_000)
            assert out == [1]
