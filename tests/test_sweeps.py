"""Tests for the sweep utilities."""

import pytest

from repro.config import widir_config
from repro.harness.sweeps import (
    label_for,
    speedup_table,
    sweep_config_field,
    sweep_core_counts,
    sweep_protocols,
    sweep_thresholds,
)


class TestLabels:
    def test_widir_label_includes_threshold(self):
        config = widir_config(num_cores=8, max_wired_sharers=4)
        assert label_for("fft", config) == "fft/widir/8c/t4"

    def test_baseline_label(self):
        from repro.config import baseline_config

        assert label_for("fft", baseline_config(num_cores=8)) == "fft/baseline/8c"


class TestSweeps:
    def test_protocol_sweep_runs_both_machines(self):
        seen = []
        results = sweep_protocols(
            ["volrend"], num_cores=8, memops=150, progress=seen.append
        )
        assert len(results) == 2
        assert len(seen) == 2
        assert any("/baseline/" in label for label in results)
        assert any("/widir/" in label for label in results)

    def test_core_count_sweep(self):
        results = sweep_core_counts("volrend", (4, 8), memops=150)
        assert len(results) == 4
        cores_seen = {r.config.num_cores for r in results.values()}
        assert cores_seen == {4, 8}

    def test_threshold_sweep(self):
        results = sweep_thresholds("volrend", (2, 3), num_cores=8, memops=150)
        assert len(results) == 2
        thresholds = {
            r.config.directory.max_wired_sharers for r in results.values()
        }
        assert thresholds == {2, 3}

    def test_config_field_sweep_nested(self):
        base = widir_config(num_cores=8)
        results = sweep_config_field(
            "volrend", base, "wireless.data_transfer_cycles", (2, 4), memops=150
        )
        assert set(results) == {
            "volrend/wireless.data_transfer_cycles=2",
            "volrend/wireless.data_transfer_cycles=4",
        }

    def test_config_field_sweep_rejects_deep_paths(self):
        with pytest.raises(ValueError):
            sweep_config_field(
                "volrend", widir_config(num_cores=8), "a.b.c", (1,), memops=100
            )

    def test_speedup_table_pairs_protocols(self):
        results = sweep_protocols(["volrend"], num_cores=8, memops=150)
        table = speedup_table(results)
        assert "volrend" in table
        assert table["volrend"] > 0
