"""Unit and property tests for mesh geometry and XY routing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.errors import ConfigurationError
from repro.noc.topology import MeshTopology


class TestGeometry:
    def test_coordinates_roundtrip(self):
        mesh = MeshTopology(16, 4)
        for node in range(16):
            x, y = mesh.coordinates_of(node)
            assert mesh.node_at(x, y) == node

    def test_invalid_node_rejected(self):
        mesh = MeshTopology(16, 4)
        with pytest.raises(ConfigurationError):
            mesh.coordinates_of(16)
        with pytest.raises(ConfigurationError):
            mesh.coordinates_of(-1)

    def test_rejects_empty_mesh(self):
        with pytest.raises(ConfigurationError):
            MeshTopology(0, 4)

    def test_diameter_of_square_mesh(self):
        mesh = MeshTopology(64, 8)
        assert mesh.diameter() == 14  # corner to corner of 8x8

    def test_neighbors_interior_node(self):
        mesh = MeshTopology(16, 4)
        assert sorted(mesh.neighbors(5)) == [1, 4, 6, 9]

    def test_neighbors_corner_node(self):
        mesh = MeshTopology(16, 4)
        assert sorted(mesh.neighbors(0)) == [1, 4]


class TestRouting:
    def test_route_self_is_empty(self):
        mesh = MeshTopology(16, 4)
        assert mesh.route(5, 5) == []

    def test_route_length_equals_hops(self):
        mesh = MeshTopology(64, 8)
        for src, dst in [(0, 63), (7, 56), (10, 45), (3, 3)]:
            assert len(mesh.route(src, dst)) == mesh.hops(src, dst)

    def test_route_is_x_then_y(self):
        mesh = MeshTopology(16, 4)
        links = mesh.route(0, 15)  # (0,0) -> (3,3)
        xs = [mesh.coordinates_of(b)[0] for _, b in links]
        # X coordinate reaches its target before Y moves begin.
        first_y_move = next(
            i for i, (a, b) in enumerate(links)
            if mesh.coordinates_of(a)[1] != mesh.coordinates_of(b)[1]
        )
        assert all(x == 3 for x in xs[first_y_move:])

    def test_route_links_are_adjacent(self):
        mesh = MeshTopology(32, 8)
        for a, b in mesh.route(0, 31):
            assert b in set(mesh.neighbors(a))

    @settings(max_examples=100, deadline=None)
    @given(
        num=st.sampled_from([4, 8, 16, 32, 64]),
        seed=st.integers(0, 10_000),
    )
    def test_property_hops_symmetric_and_bounded(self, num, seed):
        width = {4: 2, 8: 4, 16: 4, 32: 8, 64: 8}[num]
        mesh = MeshTopology(num, width)
        src = seed % num
        dst = (seed // num) % num
        hops = mesh.hops(src, dst)
        assert hops == mesh.hops(dst, src)
        assert 0 <= hops <= mesh.diameter()
        assert (hops == 0) == (src == dst)

    @settings(max_examples=60, deadline=None)
    @given(num=st.sampled_from([16, 64]), seed=st.integers(0, 10_000))
    def test_property_triangle_inequality(self, num, seed):
        width = 4 if num == 16 else 8
        mesh = MeshTopology(num, width)
        a, b, c = seed % num, (seed // 7) % num, (seed // 97) % num
        assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)
