"""CLI contract tests: the noun-verb surface is a stable, snapshotted API.

Every subcommand's ``--help`` text is snapshotted under
``tests/snapshots/cli/``; an unintentional flag rename, default change, or
removed command shows up as a snapshot diff. Regenerate deliberately with::

    REPRO_REGEN_CLI_SNAPSHOTS=1 PYTHONPATH=src python -m pytest tests/test_cli_contract.py

Help output is normalized (pinned width, the Python 3.9 "optional
arguments:" heading rewritten to the 3.10+ "options:") so snapshots are
identical across the CI interpreter matrix.
"""

import argparse
import os
from pathlib import Path

import pytest

from repro.cli import (
    CLI_COMMANDS,
    DEPRECATED_ALIASES,
    _parse_args,
    build_parser,
)

SNAPSHOT_DIR = Path(__file__).resolve().parent / "snapshots" / "cli"
REGEN = os.environ.get("REPRO_REGEN_CLI_SNAPSHOTS") == "1"

#: One snapshot per command path; () is the root parser.
COMMAND_PATHS = ((),) + tuple(CLI_COMMANDS)


def _subparser_action(parser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action
    raise AssertionError(f"{parser.prog} has no subcommands")


def _parser_for(path):
    parser = build_parser()
    for name in path:
        parser = _subparser_action(parser).choices[name]
    return parser


def _normalize(text: str) -> str:
    text = text.replace("optional arguments:", "options:")
    return "\n".join(line.rstrip() for line in text.splitlines()) + "\n"


def _snapshot_name(path) -> str:
    return ("root" if not path else "-".join(path)) + ".txt"


@pytest.fixture(autouse=True)
def _pinned_terminal(monkeypatch):
    monkeypatch.setenv("COLUMNS", "100")


class TestHelpSnapshots:
    @pytest.mark.parametrize(
        "path", COMMAND_PATHS, ids=[_snapshot_name(p) for p in COMMAND_PATHS]
    )
    def test_help_matches_snapshot(self, path):
        rendered = _normalize(_parser_for(path).format_help())
        snapshot = SNAPSHOT_DIR / _snapshot_name(path)
        if REGEN:
            snapshot.parent.mkdir(parents=True, exist_ok=True)
            snapshot.write_text(rendered, encoding="utf-8")
        assert snapshot.exists(), (
            f"missing snapshot {snapshot}; regenerate with "
            "REPRO_REGEN_CLI_SNAPSHOTS=1"
        )
        assert rendered == _normalize(snapshot.read_text(encoding="utf-8")), (
            f"`repro {' '.join(path)} --help` drifted from its snapshot — "
            "if intentional, regenerate with REPRO_REGEN_CLI_SNAPSHOTS=1"
        )

    def test_no_orphaned_snapshots(self):
        expected = {_snapshot_name(p) for p in COMMAND_PATHS}
        on_disk = {p.name for p in SNAPSHOT_DIR.glob("*.txt")}
        assert on_disk == expected

    def test_deprecated_aliases_are_hidden_from_help(self):
        root_help = _normalize(build_parser().format_help())
        for old in DEPRECATED_ALIASES:
            if old in ("figure", "apps", "verify"):
                continue  # same-named nouns are legitimately listed
            assert f" {old}" not in root_help.split("positional")[0]


class TestGrammar:
    def test_every_declared_command_parses_help(self):
        for path in CLI_COMMANDS:
            parser = _parser_for(path)
            assert parser.format_usage().startswith("usage: repro ")

    @pytest.mark.parametrize(
        "legacy,expected",
        [
            (["run", "fft"], ("sim", "run")),
            (["compare", "fft"], ("sim", "compare")),
            (["profile", "fft"], ("sim", "profile")),
            (["figure", "fig6"], ("figure", "render")),
            (["verify", "--campaign", "smoke"], ("verify", "run")),
        ],
    )
    def test_legacy_spellings_map_to_canonical(self, legacy, expected):
        args = _parse_args(legacy)
        assert (args.command, args.verb) == expected
        assert args._deprecated == legacy[0]
        assert DEPRECATED_ALIASES[legacy[0]] == " ".join(expected)

    def test_canonical_spellings_carry_no_deprecation(self):
        args = _parse_args(["sim", "run", "fft"])
        assert getattr(args, "_deprecated", None) is None

    def test_bare_apps_defaults_to_list(self):
        args = _parse_args(["apps"])
        assert (args.command, args.verb) == ("apps", "list")

    def test_shared_execution_flags(self):
        args = _parse_args(
            ["sim", "run", "fft", "--workers", "3", "--no-cache"]
        )
        assert args.workers == 3 and args.no_cache is True
        args = _parse_args(
            ["campaign", "run", "--apps", "fft", "--out", "x",
             "--workers", "2", "--no-cache"]
        )
        assert args.workers == 2 and args.no_cache is True

    def test_shared_machine_flags(self):
        for argv in (
            ["sim", "run", "fft", "--cores", "8", "--seed", "7"],
            ["sim", "compare", "fft", "--cores", "8", "--seed", "7"],
            ["figure", "render", "fig6", "--cores", "8", "--seed", "7"],
            ["campaign", "run", "--apps", "fft", "--out", "x",
             "--cores", "8", "--seed", "7"],
        ):
            args = _parse_args(argv)
            assert (args.cores, args.seed) == (8, 7), argv

    def test_profile_output_alias_still_parses(self):
        args = _parse_args(["sim", "profile", "fft", "--output", "r.txt"])
        assert args.out == "r.txt"
        args = _parse_args(["sim", "profile", "fft", "--out", "r.txt"])
        assert args.out == "r.txt"

    def test_unknown_noun_fails_fast(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            _parse_args(["meteor"])
        assert excinfo.value.code == 2
