"""Unit tests for the discrete-event kernel."""

import pytest

from repro.engine.errors import SimulationError
from repro.engine.events import EventQueue
from repro.engine.simulator import Simulator


class TestEventQueue:
    def test_empty_queue_has_no_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert len(q) == 0

    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.pop()

    def test_events_pop_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(30, lambda: fired.append(30))
        q.schedule(10, lambda: fired.append(10))
        q.schedule(20, lambda: fired.append(20))
        while len(q):
            q.pop().callback()
        assert fired == [10, 20, 30]

    def test_same_cycle_events_fire_in_schedule_order(self):
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule(5, lambda i=i: fired.append(i))
        while len(q):
            q.pop().callback()
        assert fired == list(range(10))

    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        event = q.schedule(1, lambda: pytest.fail("cancelled event ran"))
        keep = q.schedule(2, lambda: None)
        event.cancel()
        assert q.pop() is keep

    def test_cancel_updates_live_count(self):
        q = EventQueue()
        event = q.schedule(1, lambda: None)
        q.schedule(2, lambda: None)
        event.cancel()
        assert q.peek_time() == 2
        assert len(q) == 1

    def test_peek_time_returns_earliest(self):
        q = EventQueue()
        q.schedule(7, lambda: None)
        q.schedule(3, lambda: None)
        assert q.peek_time() == 3

    def test_cancel_at_head_between_peek_and_pop(self):
        """Regression: cancelling the head *after* peek_time() must not let
        pop() hand back the tombstone."""
        q = EventQueue()
        head = q.schedule(1, lambda: pytest.fail("cancelled head ran"))
        keep = q.schedule(1, lambda: None)
        assert q.peek_time() == 1  # head is still live at peek time
        head.cancel()  # a same-cycle callback cancels the head
        popped = q.pop()
        assert popped is keep
        assert not popped.cancelled

    def test_pop_skips_runs_of_tombstones(self):
        q = EventQueue()
        dead = [q.schedule(t, lambda: None) for t in (1, 2, 3)]
        keep = q.schedule(4, lambda: None)
        for event in dead:
            event.cancel()
        assert q.pop() is keep
        with pytest.raises(SimulationError):
            q.pop()


class TestSimulator:
    def test_run_advances_clock_to_last_event(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.schedule(25, lambda: None)
        assert sim.run() == 25
        assert sim.now == 25

    def test_schedule_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(3, lambda: None)

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                sim.schedule(1, lambda: chain(n + 1))

        sim.schedule(0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert sim.now == 5

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(10))
        sim.schedule(50, lambda: fired.append(50))
        sim.run(until=20)
        assert fired == [10]
        assert sim.now == 20
        sim.run()
        assert fired == [10, 50]

    def test_max_events_guards_against_livelock(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_max_events_budget_is_exact(self):
        """Regression (off-by-one): exactly ``max_events`` callbacks may
        run; the budget is checked *before* executing the next event."""
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        with pytest.raises(SimulationError):
            sim.run(max_events=3)
        assert fired == [0, 1, 2]  # the 4th callback never executed
        assert sim.events_executed == 3

    def test_max_events_equal_to_workload_passes(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        sim.run(max_events=5)  # budget exactly met: no error
        assert sim.events_executed == 5

    def test_same_cycle_batch_preserves_order_and_until(self):
        """The same-cycle drain fast path must not reorder events or
        overrun an ``until`` bound."""
        sim = Simulator()
        fired = []
        for i in range(4):
            sim.schedule(10, lambda i=i: fired.append(("a", i)))
        sim.schedule(20, lambda: fired.append(("b", 0)))
        sim.run(until=15)
        assert fired == [("a", 0), ("a", 1), ("a", 2), ("a", 3)]
        assert sim.now == 15
        sim.run()
        assert fired[-1] == ("b", 0)

    def test_cancel_within_same_cycle_batch(self):
        """A callback cancelling a later event of the *same* cycle must
        suppress it even inside the batched drain."""
        sim = Simulator()
        fired = []
        holder = {}
        # Scheduled first => runs first; cancels its same-cycle successor.
        sim.schedule(5, lambda: holder["victim"].cancel())
        holder["victim"] = sim.schedule(5, lambda: fired.append("victim"))
        sim.run()
        assert fired == []
        assert sim.events_executed == 1

    def test_stop_requests_early_return(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        sim.run()
        assert fired == [1, 2]

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_executed == 7
