"""Directed regression tests for protocol races found during development.

Every scenario here reproduces (in miniature) a race that once broke the
implementation. The comments name the failure each test guards against;
see DESIGN.md section 5 for the design-level write-ups.
"""

import pytest

from repro.config import baseline_config, widir_config
from repro.config.system import WirelessConfig
from repro.coherence import messages as mk
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.noc.message import Message
from repro.stats.collectors import StatsRegistry
from repro.system import Manycore
from repro.wireless.channel import WirelessDataChannel
from repro.wireless.frames import WirelessFrame


ADDR = 0x0003_0000


def drain(machine, budget=20_000_000):
    machine.run(max_events=budget)


def load(machine, core, address=ADDR):
    out = []
    machine.caches[core].load(address, out.append)
    drain(machine)
    return out[0]


def store(machine, core, value, address=ADDR):
    done = []
    machine.caches[core].store(address, value, lambda: done.append(True))
    drain(machine)
    assert done


class TestResponseForwardOrdering:
    """Race: a response sent with LLC latency was overtaken by a forward
    sent one event later with a smaller delay (fixed by per-pair FIFO)."""

    def test_grant_then_forward_arrive_in_order(self):
        machine = Manycore(baseline_config(num_cores=16))
        # Core 0 cold write; immediately core 1 writes: the directory sends
        # DataE to 0 then (after the fetch) FwdGetX to 0. Order must hold.
        done = []
        machine.caches[0].store(ADDR, 1, lambda: done.append("a"))
        machine.caches[1].store(ADDR, 2, lambda: done.append("b"))
        drain(machine)
        assert sorted(done) == ["a", "b"]
        assert load(machine, 1) == 2
        machine.check_coherence()

    def test_sixteen_way_write_race_resolves(self):
        machine = Manycore(baseline_config(num_cores=16))
        done = []
        for core in range(16):
            machine.caches[core].store(ADDR, core, lambda c=core: done.append(c))
        drain(machine)
        assert len(done) == 16
        final = load(machine, 0)
        assert final in range(16)
        machine.check_coherence()


class TestForwardCompletesAtRequester:
    """Race: the directory unblocked on the owner's ack before the
    requester installed the forwarded data; the next forward found no
    owner. Completion now routes through the requester."""

    def test_chained_ownership_transfers(self):
        machine = Manycore(baseline_config(num_cores=16))
        for core in range(8):
            store(machine, core, 100 + core)
        assert load(machine, 15) == 107
        machine.check_coherence()

    def test_read_after_write_chain(self):
        machine = Manycore(baseline_config(num_cores=16))
        store(machine, 0, 5)
        # Reads from many cores force FwdGetS from the dirty owner.
        for core in (3, 7, 11):
            assert load(machine, core) == 5
        machine.check_coherence()


class TestOwnerEvictionVsForward:
    """Race: the owner evicted its line while a forward was in flight;
    the eviction buffer must answer until the directory's PutAck."""

    def test_forward_served_from_eviction_buffer(self):
        machine = Manycore(baseline_config(num_cores=4))
        store(machine, 0, 77)
        cache = machine.caches[0]
        line = machine.amap.line_of(ADDR)
        victim = cache.array.lookup(line)
        # Start the eviction but do NOT run the sim: PutM is now in flight.
        cache._evict(victim)
        assert line in cache._evicting
        # A reader's request will be forwarded at the directory (still E).
        out = []
        machine.caches[2].load(ADDR, out.append)
        drain(machine)
        assert out[0] == 77
        assert line not in cache._evicting  # PutAck arrived
        machine.check_coherence()

    def test_rerequest_blocked_until_put_ack(self):
        """A cache must not re-request a line whose eviction is unacked
        (the directory could otherwise mistake the old PutM for current)."""
        machine = Manycore(baseline_config(num_cores=4))
        store(machine, 0, 1)
        cache = machine.caches[0]
        line = machine.amap.line_of(ADDR)
        cache._evict(cache.array.lookup(line))
        # Immediately re-access: must still produce the correct value.
        out = []
        machine.caches[0].load(ADDR, out.append)
        drain(machine)
        assert out[0] == 1
        machine.check_coherence()


class TestToneAckCaseIII:
    """Race: a Shared grant in flight across an S->W transition must
    install in W (paper completion case iii), not S."""

    def test_in_flight_data_converts_to_wireless(self):
        machine = Manycore(widir_config(num_cores=8))
        # Three sharers, then two more requests back-to-back: the second
        # triggers S->W while the first's Data response may be in flight.
        for core in range(3):
            load(machine, core)
        out = []
        machine.caches[3].load(ADDR, lambda v: out.append(v))
        machine.caches[4].load(ADDR, lambda v: out.append(v))
        drain(machine)
        assert len(out) == 2
        line = machine.amap.line_of(ADDR)
        entry = machine.directories[machine.amap.home_of(line)].array.lookup(
            line, touch=False
        )
        assert entry.state == "W"
        # Every holder must be in W — an S straggler would corrupt counts.
        for core in range(5):
            cached = machine.caches[core].array.lookup(line, touch=False)
            if cached is not None:
                assert cached.state == "W"
        machine.check_coherence()


class TestJoinSnapshotFreshness:
    """Race: a joiner's WirUpgr snapshot missed a committed-but-undelivered
    WirUpd (fixed by the jam settle window)."""

    def test_joiner_sees_latest_update(self):
        machine = Manycore(widir_config(num_cores=16))
        for core in range(5):
            load(machine, core)
        # Burst of wireless writes, then an immediate join.
        done = []
        machine.caches[0].store(ADDR, 111, lambda: done.append(1))
        machine.caches[1].store(ADDR, 222, lambda: done.append(1))
        out = []
        machine.caches[9].load(ADDR, out.append)
        drain(machine)
        # The join may legally serialize before either write; what matters
        # is that after quiescence every copy (including the joiner's)
        # converged on the same value — a stale snapshot would diverge.
        assert out[0] in (0, 111, 222)
        values = {load(machine, c) for c in (0, 1, 9)}
        assert len(values) == 1
        machine.check_coherence()

    def test_home_tile_l1_updates_are_jammed_too(self):
        """Race: jam exemption by sender let the home tile's own L1 slip
        updates past its directory's jam (fixed by kind-based exemption)."""
        machine = Manycore(widir_config(num_cores=8))
        line = machine.amap.line_of(ADDR)
        home = machine.amap.home_of(line)
        sharers = [c for c in range(8) if c != home][:4] + [home]
        for core in sharers:
            load(machine, core)
        # The home tile's own L1 writes wirelessly while another core joins.
        done = []
        machine.caches[home].store(ADDR, 999, lambda: done.append(1))
        joiner = [c for c in range(8) if c not in sharers][0]
        out = []
        machine.caches[joiner].load(ADDR, out.append)
        drain(machine)
        assert done
        values = {load(machine, c) for c in sharers + [joiner]}
        assert values == {999}
        machine.check_coherence()


class TestStaleRequestHandling:
    """Races: superseded requests answered late produced duplicate grants,
    self-forwards, and orphaned MSHRs (fixed by serials + owner-discard)."""

    def test_upgrade_churn_through_w_epochs(self):
        machine = Manycore(widir_config(num_cores=8))
        # Cycle the line through W and back while cores keep writing.
        for round_id in range(3):
            for core in range(5):
                load(machine, core)
            for core in range(5):
                store(machine, core, round_id * 10 + core)
            # Kill the wireless epoch by evicting down to the threshold.
            line = machine.amap.line_of(ADDR)
            for core in (4, 3):
                entry = machine.caches[core].array.lookup(line, touch=False)
                if entry is not None and entry.state == "W":
                    machine.caches[core]._evict(entry)
                    drain(machine)
        machine.check_coherence()

    def test_atomics_survive_w_epoch_churn(self):
        machine = Manycore(widir_config(num_cores=8))
        total = 40
        remaining = {c: total // 8 for c in range(8)}

        def go(core):
            if remaining[core] == 0:
                return
            remaining[core] -= 1
            machine.caches[core].rmw(ADDR, lambda _o, c=core: go(c))

        for core in range(4):  # seed some read sharing first
            load(machine, core)
        for core in range(8):
            go(core)
        drain(machine, budget=100_000_000)
        assert all(v == 0 for v in remaining.values())
        assert load(machine, 0) == total
        machine.check_coherence()


class TestDowngradeAckAccounting:
    """Races: an acked-then-evicted sharer made the W->S completion target
    unreachable; a late ack after closure left an untracked stale copy."""

    def test_ack_then_evict_still_completes_downgrade(self):
        machine = Manycore(widir_config(num_cores=8))
        for core in range(5):
            load(machine, core)
        line = machine.amap.line_of(ADDR)
        # Drop two sharers concurrently (without draining between) so the
        # WirDwgr collection overlaps further departures.
        for core in (4, 3, 2):
            entry = machine.caches[core].array.lookup(line, touch=False)
            if entry is not None:
                machine.caches[core]._evict(entry)
        drain(machine)
        entry = machine.directories[machine.amap.home_of(line)].array.lookup(
            line, touch=False
        )
        assert entry is not None
        assert not entry.busy, "W->S must have completed"
        machine.check_coherence()

    def test_values_correct_after_overlapping_departures(self):
        machine = Manycore(widir_config(num_cores=8))
        for core in range(6):
            load(machine, core)
        store(machine, 0, 4242)
        line = machine.amap.line_of(ADDR)
        for core in (5, 4, 3):
            entry = machine.caches[core].array.lookup(line, touch=False)
            if entry is not None:
                machine.caches[core]._evict(entry)
        drain(machine)
        assert load(machine, 7) == 4242
        machine.check_coherence()


class TestOwnerLeftDuringForward:
    """Race: a PutS from the downgrading owner during fwd_gets was lost and
    the owner re-added as a phantom sharer at completion."""

    def test_owner_eviction_mid_forward_not_phantom(self):
        machine = Manycore(baseline_config(num_cores=8))
        store(machine, 0, 9)
        line = machine.amap.line_of(ADDR)
        # Reader triggers FwdGetS; as soon as the owner downgrades, it
        # evicts its new S copy (all without draining in between is not
        # directly constructible, so emulate: read, then evict quickly).
        out = []
        machine.caches[1].load(ADDR, out.append)
        drain(machine)
        owner_entry = machine.caches[0].array.lookup(line, touch=False)
        machine.caches[0]._evict(owner_entry)
        drain(machine)
        home = machine.amap.home_of(line)
        entry = machine.directories[home].array.lookup(line, touch=False)
        assert 0 not in entry.sharers
        # A write by another core must not wait on the phantom.
        store(machine, 2, 10)
        assert load(machine, 3) == 10
        machine.check_coherence()


class TestWirelessWriteSquash:
    """Paper IV-C: pending wireless writes squashed by WirInv/WirDwgr retry
    through the wired path and still land exactly once."""

    def test_downgrade_mid_write_lands_once(self):
        machine = Manycore(widir_config(num_cores=8))
        for core in range(5):
            load(machine, core)
        line = machine.amap.line_of(ADDR)
        # Issue a wireless write and immediately force a downgrade.
        done = []
        machine.caches[0].store(ADDR, 31337, lambda: done.append(1))
        for core in (4, 3):
            entry = machine.caches[core].array.lookup(line, touch=False)
            if entry is not None:
                machine.caches[core]._evict(entry)
        drain(machine)
        assert done == [1]
        assert load(machine, 6) == 31337
        machine.check_coherence()


# --------------------------------------------------------------------------
# Jam-vs-commit window (channel-level directed races)
# --------------------------------------------------------------------------


def _channel(num_nodes=4, seed=7):
    sim = Simulator(seed)
    channel = WirelessDataChannel(
        sim, WirelessConfig(), num_nodes, StatsRegistry(), DeterministicRng(3)
    )
    return sim, channel


class TestJamVsCommitWindow:
    """Races around the serialization point (paper IV-C): the moment a
    frame survives the collision-detect slot it is *guaranteed* to
    transmit. A jam (or cancel) that arrives after that moment must not
    retract the frame; a jam that lands in the same cycle as arbitration
    must NACK it before its commit callback ever runs."""

    def test_frame_past_collision_detect_is_not_jammable(self):
        """Jam registered after the collision-detect slot: the in-flight
        WirUpd still commits and delivers — the jam only affects later
        frames for the line."""
        sim, channel = _channel()
        heard = []
        channel.register_receiver(0, lambda f: heard.append(f.value))
        events = []
        channel.transmit(
            WirelessFrame("WirUpd", 1, 0x200, 0, 77),
            on_commit=lambda: events.append(("commit", sim.now)),
            on_delivered=lambda: events.append(("delivered", sim.now)),
        )
        header = (
            channel.config.preamble_cycles
            + channel.config.collision_detect_cycles
        )
        # Run exactly through the commit cycle, then jam.
        sim.run(until=header)
        assert ("commit", header) in events
        channel.jam(0x200)
        sim.run()
        assert heard == [77]
        assert [kind for kind, _ in events] == ["commit", "delivered"]
        assert channel.stats.get_counter("wnoc.jams") == 0

    def test_frame_past_collision_detect_is_not_cancellable(self):
        """cancel() after the serialization point returns False and the
        broadcast still reaches every receiver exactly once."""
        sim, channel = _channel()
        heard = []
        channel.register_receiver(2, lambda f: heard.append(f.value))
        request = channel.transmit(WirelessFrame("WirUpd", 1, 0x240, 0, 9))
        header = (
            channel.config.preamble_cycles
            + channel.config.collision_detect_cycles
        )
        sim.run(until=header)
        assert request.committed
        assert request.cancel() is False
        sim.run()
        assert heard == [9]

    def test_cancel_inside_collision_detect_window_squashes(self):
        """The complementary race: a cancel that lands *between*
        arbitration and the commit cycle wins — the slot is wasted but
        the frame never commits, never delivers, and the medium stays
        live for the next sender."""
        sim, channel = _channel()
        heard = []
        channel.register_receiver(0, lambda f: heard.append(f.value))
        fired = []
        request = channel.transmit(
            WirelessFrame("WirUpd", 1, 0x280, 0, 5),
            on_commit=lambda: fired.append("commit"),
            on_delivered=lambda: fired.append("delivered"),
        )
        # Arbitration happens at cycle 0; cancel in the collision-detect
        # slot, strictly before the commit event.
        sim.schedule_at(1, lambda: request.cancel())
        sim.run()
        assert fired == []
        assert heard == []
        assert channel.stats.get_counter("wnoc.cancellations") == 1
        # Medium is not wedged: a follow-up frame transmits normally.
        channel.transmit(WirelessFrame("WirUpd", 2, 0x280, 0, 6))
        sim.run()
        assert heard == [6]

    def test_jam_same_cycle_as_arbitration_nacks_before_commit(self):
        """A jam registered in the same cycle the frame arbitrates (but
        ahead of it in event order — the directory acts first) NACKs the
        frame in the collision-detect slot: commit must NOT run until the
        jam is lifted and the backed-off retry succeeds."""
        sim, channel = _channel()
        heard = []
        channel.register_receiver(3, lambda f: heard.append(f.value))
        commits = []

        def launch():
            channel.jam(0x2C0)  # directory's jam lands first...
            channel.transmit(  # ...the frame arbitrates the same cycle
                WirelessFrame("WirUpd", 1, 0x2C0, 0, 13),
                on_commit=lambda: commits.append(sim.now),
            )

        sim.schedule_at(5, launch)
        unjam_at = 60
        sim.schedule_at(unjam_at, lambda: channel.unjam(0x2C0))
        sim.run(until=200_000)
        assert channel.stats.get_counter("wnoc.jams") >= 1
        assert heard == [13]
        assert len(commits) == 1
        assert commits[0] > unjam_at, (
            "frame committed while the line was still jammed"
        )

    def test_nested_fault_injector_jam_cannot_lift_directory_jam(self):
        """Refcounted jamming: an overlapping jam/unjam pair (e.g. a fuzz
        jam storm) inside a directory's own jam window must not unjam the
        line early."""
        sim, channel = _channel()
        heard = []
        channel.register_receiver(0, lambda f: heard.append(f.value))
        channel.jam(0x300)  # directory
        channel.jam(0x300)  # injector storm begins
        channel.transmit(WirelessFrame("WirUpd", 1, 0x300, 0, 21))
        channel.unjam(0x300)  # storm ends — directory jam must survive
        assert channel.is_jammed(0x300)
        sim.run(until=300)
        assert heard == []  # still NACKed by the directory's jam
        channel.unjam(0x300)
        sim.run(until=200_000)
        assert heard == [21]
