"""Unit-level tests of directory controller handlers on a live machine.

These inject specific wired messages / states and check the handler-level
behaviour that the end-to-end tests only cover implicitly: deferral rules,
Nack serial echoing, PutM-for-unknown-line handling, recall completion, and
stale-message tolerance.
"""

import pytest

from repro.coherence import messages as mk
from repro.config import baseline_config, widir_config
from repro.noc.message import Message
from repro.system import Manycore

ADDR = 0x0007_0000


def quiesce_store(machine, core, value, address=ADDR):
    done = []
    machine.caches[core].store(address, value, lambda: done.append(1))
    machine.run(max_events=10_000_000)
    assert done


def quiesce_load(machine, core, address=ADDR):
    out = []
    machine.caches[core].load(address, out.append)
    machine.run(max_events=10_000_000)
    return out[0]


def home_dir(machine, address=ADDR):
    line = machine.amap.line_of(address)
    return machine.directories[machine.amap.home_of(line)], line


class TestDeferral:
    def test_busy_entry_defers_new_requests(self):
        machine = Manycore(baseline_config(num_cores=4))
        quiesce_store(machine, 0, 1)
        directory, line = home_dir(machine)
        # Force a fetch-style busy state and inject a request by hand.
        entry = directory.array.lookup(line, touch=False)
        entry.busy = True
        entry.transaction = {"type": "fwd_gets", "requester": 2}
        directory.handle_message(Message(mk.GETS, 3, directory.node, line))
        assert len(entry.deferred) == 1
        # Restore and let the machine settle via the real path.
        entry.busy = False
        entry.transaction = None
        entry.deferred.clear()

    def test_put_s_processed_while_busy(self):
        """PutS is bookkeeping and must not sit in the deferred queue."""
        machine = Manycore(baseline_config(num_cores=4))
        for core in (0, 1):
            quiesce_load(machine, core)
        directory, line = home_dir(machine)
        entry = directory.array.lookup(line, touch=False)
        entry.busy = True
        entry.transaction = {"type": "fetch", "requester": 3}
        directory.handle_message(Message(mk.PUTS, 1, directory.node, line))
        assert 1 not in entry.sharers
        assert len(entry.deferred) == 0
        entry.busy = False
        entry.transaction = None


class TestPutMHandling:
    def test_put_m_for_unknown_line_writes_memory_and_acks(self):
        machine = Manycore(baseline_config(num_cores=4))
        directory, line = home_dir(machine)
        payload = {"dirty": True, "data": {0: 4242}}
        directory.handle_message(
            Message(mk.PUTM, 2, directory.node, line, payload)
        )
        machine.run(max_events=1_000_000)
        assert machine.memory.read_word(line, 0) == 4242

    def test_put_m_from_non_owner_still_acked(self):
        machine = Manycore(baseline_config(num_cores=4))
        quiesce_store(machine, 0, 1)
        directory, line = home_dir(machine)
        # Core 3 never owned the line; a stale PutM must not corrupt state.
        directory.handle_message(
            Message(mk.PUTM, 3, directory.node, line, {"dirty": False})
        )
        machine.run(max_events=1_000_000)
        entry = directory.array.lookup(line, touch=False)
        assert entry.owner == 0
        assert quiesce_load(machine, 1) == 1


class TestStaleMessageTolerance:
    def test_stray_inv_ack_ignored(self):
        machine = Manycore(baseline_config(num_cores=4))
        quiesce_store(machine, 0, 1)
        directory, line = home_dir(machine)
        directory.handle_message(Message(mk.INV_ACK, 2, directory.node, line))
        machine.run(max_events=1_000_000)
        machine.check_coherence()

    def test_stray_wb_data_ignored(self):
        machine = Manycore(baseline_config(num_cores=4))
        quiesce_store(machine, 0, 1)
        directory, line = home_dir(machine)
        directory.handle_message(
            Message(mk.WB_DATA, 2, directory.node, line, {"data": {0: 9}})
        )
        machine.run(max_events=1_000_000)
        assert quiesce_load(machine, 1) == 1

    def test_stray_put_w_on_wired_machine_ignored(self):
        machine = Manycore(baseline_config(num_cores=4))
        quiesce_store(machine, 0, 1)
        directory, line = home_dir(machine)
        directory.handle_message(Message(mk.PUTW, 2, directory.node, line))
        machine.run(max_events=1_000_000)
        machine.check_coherence()

    def test_unknown_kind_raises(self):
        machine = Manycore(baseline_config(num_cores=4))
        directory, line = home_dir(machine)
        from repro.engine.errors import ProtocolError

        with pytest.raises(ProtocolError):
            directory.handle_message(
                Message("Bogus", 0, directory.node, line)
            )


class TestNackSerialEcho:
    def test_nack_carries_request_serial(self):
        """During S->W, bounced requests echo the requester's serial so the
        cache can discard stale bounces."""
        machine = Manycore(widir_config(num_cores=8))
        captured = []
        original = machine.mesh.send

        def spy(message, extra_delay=0):
            if message.kind == "Nack":
                captured.append(message.payload.get("req_serial"))
            original(message, extra_delay)

        machine.mesh.send = spy
        # Drive a hot line through S->W while more requesters pile on.
        for core in range(3):
            quiesce_load(machine, core)
        pending = []
        for core in range(3, 8):
            machine.caches[core].load(ADDR, pending.append)
        machine.run(max_events=20_000_000)
        assert len(pending) == 5
        # Any bounce that occurred carried a serial (never None).
        assert all(serial is not None for serial in captured)


class TestRecallCompletion:
    def test_shared_recall_collects_all_acks(self):
        machine = Manycore(baseline_config(num_cores=4))
        for core in range(3):
            quiesce_load(machine, core)
        directory, line = home_dir(machine)
        entry = directory.array.lookup(line, touch=False)
        directory._start_entry_eviction(entry)
        machine.run(max_events=10_000_000)
        assert directory.array.lookup(line, touch=False) is None
        for core in range(3):
            cached = machine.caches[core].array.lookup(line, touch=False)
            assert cached is None
        # The data survives in memory for the next user.
        assert quiesce_load(machine, 3) == 0
        machine.check_coherence()

    def test_exclusive_recall_preserves_dirty_data(self):
        machine = Manycore(baseline_config(num_cores=4))
        quiesce_store(machine, 1, 777)
        directory, line = home_dir(machine)
        entry = directory.array.lookup(line, touch=False)
        directory._start_entry_eviction(entry)
        machine.run(max_events=10_000_000)
        assert machine.memory.read_word(line, 0) == 777
        assert quiesce_load(machine, 2) == 777
        machine.check_coherence()

    def test_wireless_recall_preserves_dirty_data(self):
        machine = Manycore(widir_config(num_cores=8))
        for core in range(5):
            quiesce_load(machine, core)
        quiesce_store(machine, 0, 555)
        directory, line = home_dir(machine)
        entry = directory.array.lookup(line, touch=False)
        assert entry.state == "W"
        directory._start_entry_eviction(entry)
        machine.run(max_events=10_000_000)
        assert machine.memory.read_word(line, 0) == 555
        assert quiesce_load(machine, 6) == 555
        machine.check_coherence()
