"""Tests for the configuration dataclasses and presets."""

from dataclasses import replace

import pytest

from repro.config import (
    CacheConfig,
    DirectoryConfig,
    SystemConfig,
    WirelessConfig,
    baseline_config,
    paper_config,
    widir_config,
)
from repro.engine.errors import ConfigurationError


class TestTableIIIDefaults:
    """The defaults must mirror the paper's Table III."""

    def test_general_parameters(self):
        config = paper_config()
        assert config.num_cores == 64
        assert config.core.issue_width == 4
        assert config.core.rob_entries == 180
        assert config.core.load_store_queue_entries == 64
        assert config.core.write_buffer_entries == 64
        assert config.l1.size_bytes == 64 * 1024
        assert config.l1.associativity == 2
        assert config.l1.round_trip_cycles == 2
        assert config.l1.line_bytes == 64
        assert config.l2.size_bytes == 512 * 1024
        assert config.l2.associativity == 8
        assert config.l2.round_trip_cycles == 12
        assert config.noc.cycles_per_hop == 1
        assert config.noc.link_width_bits == 128
        assert config.memory.num_controllers == 4
        assert config.memory.round_trip_cycles == 80

    def test_widir_parameters(self):
        config = paper_config()
        assert config.directory.num_pointers == 3  # Dir_3_B
        assert config.directory.max_wired_sharers == 3
        assert config.wireless.data_transfer_cycles == 4
        assert config.wireless.collision_detect_cycles == 1
        assert config.wireless.tone_cycles == 1
        assert config.wireless.frame_cycles == 6

    def test_l1_geometry(self):
        config = paper_config()
        assert config.l1.num_sets == 512
        assert config.l2.num_sets == 1024


class TestMeshFactorization:
    @pytest.mark.parametrize(
        "cores,expected",
        [(64, (8, 8)), (32, (8, 4)), (16, (4, 4)), (8, (4, 2)), (4, (2, 2)), (2, (2, 1))],
    )
    def test_rectangular_factorization(self, cores, expected):
        config = paper_config(num_cores=cores)
        assert (config.mesh_width, config.mesh_height) == expected
        assert config.mesh_width * config.mesh_height == cores

    def test_prime_core_count_degenerates_to_row(self):
        config = SystemConfig(num_cores=7)
        assert (config.mesh_width, config.mesh_height) == (7, 1)


class TestValidation:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(paper_config(), protocol="magic").validate()

    def test_max_wired_sharers_bounded_by_pointers(self):
        bad = DirectoryConfig(num_pointers=3, max_wired_sharers=4)
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_mismatched_line_sizes_rejected(self):
        config = replace(
            paper_config(), l1=CacheConfig(line_bytes=64), l2=CacheConfig(line_bytes=128)
        )
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(line_bytes=96).validate()

    def test_wireless_validation(self):
        with pytest.raises(ConfigurationError):
            WirelessConfig(data_transfer_cycles=0).validate()


class TestPresets:
    def test_baseline_has_no_wireless(self):
        config = baseline_config()
        assert config.protocol == "baseline"
        assert not config.uses_wireless

    def test_widir_uses_wireless(self):
        config = widir_config()
        assert config.uses_wireless

    def test_widir_threshold_override(self):
        config = widir_config(max_wired_sharers=5)
        assert config.directory.max_wired_sharers == 5
        # Pointer count grows to keep the Dir_i_B constraint.
        assert config.directory.num_pointers >= 5

    def test_presets_are_validated(self):
        for cores in (4, 16, 64):
            baseline_config(num_cores=cores).validate()
            widir_config(num_cores=cores).validate()
