"""Tests for the transaction-level mesh network model."""

import pytest

from repro.config.system import NocConfig
from repro.engine.simulator import Simulator
from repro.noc.mesh import MeshNetwork
from repro.noc.message import Message
from repro.noc.topology import MeshTopology
from repro.stats.collectors import StatsRegistry


def make_network(num_nodes=16, width=4, contention=True):
    sim = Simulator()
    topology = MeshTopology(num_nodes, width)
    config = NocConfig(model_contention=contention)
    stats = StatsRegistry()
    network = MeshNetwork(sim, topology, config, stats)
    return sim, network, stats


def attach_collector(network, num_nodes):
    received = []
    for node in range(num_nodes):
        network.register_handler(
            node, lambda msg, node=node: received.append((node, msg))
        )
    return received


class TestDelivery:
    def test_message_reaches_destination(self):
        sim, network, _ = make_network()
        received = attach_collector(network, 16)
        network.send(Message("GetS", 0, 15, 0x40))
        sim.run()
        assert [(n, m.kind) for n, m in received] == [(15, "GetS")]

    def test_latency_grows_with_distance(self):
        sim, network, _ = make_network(contention=False)
        received = attach_collector(network, 16)
        times = {}
        for dst in (1, 15):
            network.send(Message("GetS", 0, dst, 0x40))
        sim.run()
        for node, msg in received:
            times[node] = sim.now  # not per-message; use estimate instead
        assert network.latency_estimate(0, 15) > network.latency_estimate(0, 1)

    def test_data_messages_slower_than_control(self):
        _, network, _ = make_network()
        assert network.latency_estimate(0, 5, carries_data=True) > (
            network.latency_estimate(0, 5, carries_data=False)
        )

    def test_self_send_delivered(self):
        sim, network, _ = make_network()
        received = attach_collector(network, 16)
        network.send(Message("PutAck", 3, 3, 0x40))
        sim.run()
        assert received[0][0] == 3

    def test_unregistered_destination_raises(self):
        sim, network, _ = make_network()
        network.send(Message("GetS", 0, 9, 0x40))
        with pytest.raises(KeyError):
            sim.run()


class TestOrdering:
    def test_same_pair_fifo_despite_extra_delay(self):
        """A message sent later with a smaller processing delay must not
        overtake an earlier one — the coherence protocol depends on it."""
        sim, network, _ = make_network()
        order = []
        network.register_handler(5, lambda msg: order.append(msg.kind))
        for _ in range(16):
            network.register_handler(
                5, lambda msg: order.append(msg.kind)
            )
        network.send(Message("DataE", 0, 5, 0x40), extra_delay=12)
        network.send(Message("FwdGetX", 0, 5, 0x40), extra_delay=1)
        sim.run()
        assert order == ["DataE", "FwdGetX"]

    def test_fifo_across_many_messages(self):
        sim, network, _ = make_network()
        order = []
        network.register_handler(10, lambda msg: order.append(msg.payload["i"]))
        for i in range(20):
            delay = 12 if i % 2 == 0 else 0
            network.send(Message("GetS", 3, 10, 0x40, {"i": i}), extra_delay=delay)
        sim.run()
        assert order == list(range(20))


class TestStatistics:
    def test_hop_histogram_records_legs(self):
        sim, network, stats = make_network(num_nodes=64, width=8)
        received = attach_collector(network, 64)
        network.send(Message("GetS", 0, 63, 0x40))  # 14 hops -> 12+ bin
        network.send(Message("GetS", 0, 1, 0x40))   # 1 hop  -> 0-2 bin
        sim.run()
        hist = stats.histogram("noc.hops_per_leg", ())
        assert hist.counts[0] == 1  # 0-2
        assert hist.counts[4] == 1  # 12+

    def test_average_hops(self):
        sim, network, stats = make_network()
        attach_collector(network, 16)
        network.send(Message("GetS", 0, 3, 0x40))  # 3 hops
        network.send(Message("GetS", 0, 1, 0x40))  # 1 hop
        sim.run()
        assert network.average_hops() == pytest.approx(2.0)

    def test_contention_adds_queueing(self):
        sim, network, stats = make_network()
        attach_collector(network, 16)
        # Hammer one link with data messages back to back.
        for _ in range(10):
            network.send(Message("Data", 0, 1, 0x40, {"data": {}}))
        sim.run()
        assert stats.get_counter("noc.queueing_cycles") > 0
