"""Tests for the workload layout, profiles, and trace generator."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.trace import OP_BARRIER, OP_LOAD, OP_RMW, OP_STORE, OP_THINK
from repro.workloads import ALL_APPS, APP_PROFILES, AddressLayout, build_traces
from repro.workloads.generator import build_core_trace
from repro.workloads.layout import (
    BARRIER_BASE,
    LOCK_BASE,
    PRIVATE_BASE,
    SHARED_BASE,
)


class TestLayout:
    def test_private_regions_disjoint_across_cores(self):
        layout = AddressLayout(64)
        a = layout.private_hot(0, 0)
        b = layout.private_hot(1, 0)
        assert abs(a - b) >= 0x10_0000

    def test_regions_ordered_and_disjoint(self):
        assert PRIVATE_BASE < SHARED_BASE < LOCK_BASE < BARRIER_BASE

    def test_shared_regions_disjoint_by_group_size(self):
        layout = AddressLayout(64)
        small = layout.shared_word(8, 0, 0)
        large = layout.shared_word(64, 0, 0)
        assert abs(small - large) >= 0x100_0000

    def test_group_membership(self):
        layout = AddressLayout(64)
        assert layout.group_of(0, 8) == 0
        assert layout.group_of(7, 8) == 0
        assert layout.group_of(8, 8) == 1
        assert layout.group_of(63, 64) == 0

    def test_group_size_clamped_to_machine(self):
        layout = AddressLayout(4)
        assert layout.group_of(3, 64) == 0

    def test_locks_and_barriers_get_own_lines(self):
        layout = AddressLayout(64)
        assert layout.lock(0) // 64 != layout.lock(1) // 64
        assert layout.barrier_word(0) // 64 != layout.barrier_word(1) // 64


class TestProfiles:
    def test_all_twenty_paper_apps_present(self):
        assert len(APP_PROFILES) == 20
        splash = [p for p in APP_PROFILES.values() if p.suite == "splash3"]
        parsec = [p for p in APP_PROFILES.values() if p.suite == "parsec"]
        assert len(splash) == 13
        assert len(parsec) == 7

    def test_table4_mpki_values_recorded(self):
        assert APP_PROFILES["blackscholes"].paper_mpki == pytest.approx(0.13)
        assert APP_PROFILES["canneal"].paper_mpki == pytest.approx(23.21)
        assert APP_PROFILES["lu-nc"].paper_mpki == pytest.approx(21.52)

    def test_sharing_weights_normalized(self):
        for profile in APP_PROFILES.values():
            weights = profile.sharing_weights()
            if weights:
                assert abs(sum(weights.values()) - 1.0) < 1e-9

    def test_radiosity_is_dominated_by_machine_wide_sharing(self):
        """Figure 5: >90% of radiosity's updates reach 50+ sharers."""
        weights = APP_PROFILES["radiosity"].sharing_weights()
        assert weights.get(64, 0) > 0.9

    def test_low_sharing_parsec_apps(self):
        for app in ("blackscholes", "dedup", "ferret", "freqmine"):
            profile = APP_PROFILES[app]
            assert profile.shared_fraction <= 0.03
            assert max(s for s, _ in profile.sharing_mix) <= 8


class TestGenerator:
    def test_determinism(self):
        a = build_core_trace(APP_PROFILES["fft"], 3, 16, 200, seed=5)
        b = build_core_trace(APP_PROFILES["fft"], 3, 16, 200, seed=5)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert (x.kind, x.address, x.arg, x.blocking) == (
                y.kind, y.address, y.arg, y.blocking
            )

    def test_different_cores_differ(self):
        a = build_core_trace(APP_PROFILES["fft"], 0, 16, 200, seed=5)
        b = build_core_trace(APP_PROFILES["fft"], 1, 16, 200, seed=5)
        addresses = lambda t: [op.address for op in t if op.kind == OP_LOAD]
        assert addresses(a) != addresses(b)

    def test_memop_count_approximates_request(self):
        trace = build_core_trace(APP_PROFILES["volrend"], 0, 16, 500, seed=1)
        memops = sum(1 for op in trace if op.kind in (OP_LOAD, OP_STORE, OP_RMW))
        # Lock sections and barriers add ops beyond the base count.
        assert 500 <= memops <= 800

    def test_phases_emit_barriers(self):
        profile = APP_PROFILES["ocean-nc"]
        trace = build_core_trace(profile, 0, 16, 400, seed=0)
        barrier_phases = [op.arg for op in trace if op.kind == OP_BARRIER]
        assert barrier_phases == list(range(profile.phases))

    def test_shared_fraction_realized(self):
        profile = APP_PROFILES["radiosity"]  # shared_fraction 0.28
        trace = build_core_trace(profile, 0, 64, 4000, seed=0)
        shared = sum(
            1 for op in trace
            if op.kind in (OP_LOAD, OP_STORE) and op.address >= SHARED_BASE
        )
        memops = sum(1 for op in trace if op.kind in (OP_LOAD, OP_STORE, OP_RMW))
        # Shared-data refs plus lock/barrier traffic around the ~28% target.
        assert 0.18 < shared / memops < 0.50

    def test_blackscholes_mostly_private(self):
        trace = build_core_trace(APP_PROFILES["blackscholes"], 0, 64, 1000, seed=0)
        private = sum(
            1 for op in trace
            if op.kind in (OP_LOAD, OP_STORE) and op.address < SHARED_BASE
        )
        memops = sum(1 for op in trace if op.kind in (OP_LOAD, OP_STORE, OP_RMW))
        assert private / memops > 0.95

    def test_think_gaps_match_mem_ratio(self):
        profile = APP_PROFILES["fft"]  # mem_ratio 0.33
        trace = build_core_trace(profile, 0, 16, 1000, seed=0)
        think = sum(op.arg for op in trace if op.kind == OP_THINK)
        memops = sum(1 for op in trace if op.kind in (OP_LOAD, OP_STORE, OP_RMW))
        ratio = memops / (memops + think)
        assert 0.2 < ratio < 0.5

    def test_build_traces_one_per_core(self):
        traces = build_traces(APP_PROFILES["lu-c"], 8, 100, seed=0)
        assert len(traces) == 8
        assert all(len(trace) > 100 for trace in traces)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_addresses_word_aligned(self, seed):
        trace = build_core_trace(APP_PROFILES["barnes"], 2, 16, 150, seed=seed)
        for op in trace:
            if op.kind in (OP_LOAD, OP_STORE, OP_RMW):
                assert op.address % 8 == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_rmw_targets_sync_lines(self, seed):
        """Atomics only hit lock and barrier words in these workloads."""
        trace = build_core_trace(APP_PROFILES["radiosity"], 1, 16, 300, seed=seed)
        for op in trace:
            if op.kind == OP_RMW:
                assert op.address >= LOCK_BASE
