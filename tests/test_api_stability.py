"""Stability tests for the public ``repro.api`` surface.

The contract (docs/API.md): every name in ``repro.api.__all__`` keeps its
signature across minor releases, results are typed objects, importing the
facade stays cheap (no verification/observability/campaign machinery at
module load), and replaced entry points keep working for one release
behind ``DeprecationWarning``.
"""

import inspect
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro
import repro.api as api
from repro.harness.runner import SimulationResult

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

#: The frozen surface: name -> exact parameter tuple. Additions must be
#: keyword-only with defaults, which shows up here as a deliberate diff.
EXPECTED_SIGNATURES = {
    "simulate": (
        "app", "protocol", "cores", "memops", "seed", "trace_seed",
        "max_wired_sharers", "config", "workers", "cache", "mac",
    ),
    "compare": (
        "app", "cores", "memops", "seed", "trace_seed",
        "max_wired_sharers", "workers", "cache",
    ),
    "sweep": (
        "kind", "apps", "app", "cores", "thresholds", "memops", "seed",
        "workers", "cache", "executor", "protocols", "macs",
    ),
    "protocols": (),
    "macs": (),
    "campaign": (
        "name", "apps", "out", "kind", "cores", "thresholds", "memops",
        "seed", "trace_seed", "workers", "cache", "timeout", "retries",
        "backoff_seed", "resume", "protocols", "trace_path", "trace_shards",
        "macs",
    ),
    "distributed_campaign": (
        "name", "apps", "out", "kind", "cores", "thresholds", "memops",
        "seed", "trace_seed", "workers", "shards", "host", "port", "cache",
        "store", "tenant", "retries", "backoff_seed", "lease_timeout",
        "timeout", "protocols", "trace_path", "trace_shards", "macs",
    ),
    "verify": (
        "campaign", "seed", "trials", "litmus", "litmus_schedules",
        "mutation",
    ),
    "trace": (
        "app", "protocol", "cores", "memops", "seed", "trace_seed",
        "max_wired_sharers", "sample_interval", "flight_recorder_depth",
        "mac",
    ),
    "record_trace": (
        "app", "out", "cores", "memops", "trace_seed", "chunk_records",
        "codec",
    ),
    "convert_trace": (
        "src", "out", "cores", "app", "chunk_records", "codec",
    ),
    "trace_info": ("path",),
    "validate_trace": ("path",),
    "replay": (
        "path", "protocol", "seed", "max_wired_sharers", "config",
        "snapshot_every", "mac", "snapshot_path", "expect_trace_id",
    ),
}

RESULT_TYPES = (
    "ComparisonResult", "MacInfo", "SweepResult", "TraceFileInfo",
    "TraceResult", "VerifyReport",
)


class TestSurface:
    def test_all_is_sorted_and_complete(self):
        assert api.__all__ == sorted(api.__all__)
        assert set(EXPECTED_SIGNATURES) | set(RESULT_TYPES) == set(api.__all__)

    @pytest.mark.parametrize("name", sorted(EXPECTED_SIGNATURES))
    def test_signature_is_frozen(self, name):
        params = inspect.signature(getattr(api, name)).parameters
        assert tuple(params) == EXPECTED_SIGNATURES[name]

    @pytest.mark.parametrize("name", sorted(EXPECTED_SIGNATURES))
    def test_non_leading_params_are_keyword_only(self, name):
        required_keywords = {
            ("campaign", "apps"),
            ("campaign", "out"),
            ("convert_trace", "out"),
            ("distributed_campaign", "apps"),
            ("distributed_campaign", "out"),
            ("record_trace", "out"),
        }
        params = list(inspect.signature(getattr(api, name)).parameters.values())
        for param in params[1:]:
            assert param.kind is inspect.Parameter.KEYWORD_ONLY, (name, param)
            if (name, param.name) not in required_keywords:
                assert param.default is not inspect.Parameter.empty, (
                    name, param,
                )

    @pytest.mark.parametrize("name", RESULT_TYPES)
    def test_result_types_are_frozen_dataclasses(self, name):
        cls = getattr(api, name)
        assert cls.__dataclass_params__.frozen

    def test_import_stays_cheap(self):
        """``import repro.api`` must not drag in verification, obs export,
        or campaign machinery — they load lazily inside the functions."""
        script = (
            "import sys; import repro.api; "
            "heavy = [m for m in ('repro.verify.fuzz', 'repro.verify.litmus', "
            "'repro.harness.campaign', 'repro.harness.supervisor', "
            "'repro.harness.distributed', 'repro.harness.protocol', "
            "'repro.harness.resultstore', "
            "'repro.obs.export') if m in sys.modules]; "
            "assert not heavy, heavy"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr


class TestBehaviour:
    def test_simulate_returns_simulation_result(self):
        result = api.simulate("volrend", cores=4, memops=100, cache=False)
        assert isinstance(result, SimulationResult)
        assert result.cycles > 0

    def test_simulate_matches_legacy_run_app(self):
        from repro.config.presets import widir_config
        from repro.harness.runner import run_app

        via_api = api.simulate("volrend", cores=4, memops=100, cache=False)
        legacy = run_app("volrend", widir_config(num_cores=4), 100)
        assert via_api.to_dict() == legacy.to_dict()

    def test_compare_returns_typed_comparison(self):
        diff = api.compare("volrend", cores=4, memops=100, cache=False)
        assert isinstance(diff, api.ComparisonResult)
        assert diff.speedup > 0 and diff.energy_ratio > 0

    def test_sweep_protocols_labels_and_speedups(self):
        grid = api.sweep(
            "protocols", apps=("volrend",), cores=4, memops=100, cache=False
        )
        assert isinstance(grid, api.SweepResult)
        assert not grid.partial
        assert set(dict(grid)) == {"volrend/baseline/4c", "volrend/widir/4c/t3"}
        assert grid.speedups().keys() == {"volrend"}

    def test_sweep_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            api.sweep("meteor", apps=("volrend",))

    def test_simulate_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            api.simulate("volrend", protocol="meteor")

    def test_campaign_round_trip(self, tmp_path):
        report = api.campaign(
            "api-smoke", apps=("volrend",), out=tmp_path / "camp",
            cores=4, memops=100, cache=False, workers=1,
        )
        assert report.ok and report.completed == 2
        assert (tmp_path / "camp" / "digest.txt").exists()
        # Calling again resumes instead of re-running.
        again = api.campaign(
            "api-smoke", apps=("volrend",), out=tmp_path / "camp",
            cores=4, memops=100, cache=False, workers=1,
        )
        assert again.resumed == 2 and again.digest == report.digest

    def test_trace_is_digest_neutral(self):
        traced = api.trace("volrend", cores=4, memops=100)
        plain = api.simulate("volrend", cores=4, memops=100, cache=False)
        assert isinstance(traced, api.TraceResult)
        with_obs = traced.result.to_dict()
        without = plain.to_dict()
        # Only the embedded config blob may differ (obs.enabled flips);
        # every metric must be bit-identical.
        with_obs.pop("config"), without.pop("config")
        assert with_obs == without
        assert traced.capture["spans"] or traced.capture["events"]


class TestDeprecationShims:
    def test_run_app_warns_but_works(self):
        from repro.config.presets import widir_config

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = repro.run_app
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.api.simulate" in str(w.message)
            for w in caught
        )
        result = legacy("volrend", widir_config(num_cores=4), 100)
        assert isinstance(result, SimulationResult)

    def test_run_pair_warns_but_works(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = repro.run_pair
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.api.compare" in str(w.message)
            for w in caught
        )
        base, widir = legacy("volrend", num_cores=4, memops_per_core=100)
        assert base.cycles > 0 and widir.cycles > 0

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_dir_lists_the_stable_surface(self):
        listing = dir(repro)
        assert "api" in listing and "run_app" in listing
