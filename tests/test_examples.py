"""Smoke tests that run every example script end-to-end (tiny sizes)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "volrend", "8", "200")
        assert "WiDir speedup" in out
        assert "Collision probability" in out

    def test_quickstart_rejects_unknown_app(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py"), "doom"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode != 0
        assert "unknown app" in result.stderr

    def test_lock_contention(self):
        out = run_example("lock_contention.py", "8", "10")
        assert "WiDir speedup on contended locking" in out
        assert "S->W transitions" in out

    def test_producer_consumer(self):
        out = run_example("producer_consumer.py", "6", "15")
        assert "Consumer read latency gain" in out

    def test_protocol_trace(self):
        out = run_example("protocol_trace.py")
        assert "S->W transition!" in out
        assert "coherence checked" in out

    def test_scalability_study(self):
        out = run_example("scalability_study.py", "volrend", "150")
        assert "WiDir speedup" in out
        assert "Figure 10" in out

    def test_false_sharing(self):
        out = run_example("false_sharing.py", "4", "15")
        assert "WiDir speedup on false sharing" in out

    def test_threshold_sweep(self):
        out = run_example("threshold_sweep.py", "volrend", "8", "200")
        assert "MaxWiredSharers sweep" in out
        assert "sweet spot" in out
