"""Property-based whole-protocol tests.

Hypothesis drives random access interleavings through complete machines
(both protocols) and checks the global invariants after quiescence:
coherence (SWMR, directory accuracy, value agreement), functional
correctness of atomics, and last-writer-wins visibility for data-race-free
per-word streams.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import baseline_config, widir_config
from repro.system import Manycore

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: A compact op encoding: (core, op_kind, line_index, word_index, value)
OPS = st.lists(
    st.tuples(
        st.integers(0, 7),            # core
        st.sampled_from(["load", "store", "rmw"]),
        st.integers(0, 5),            # line index into a small pool
        st.integers(0, 7),            # word within line
        st.integers(0, 1 << 20),      # store value
    ),
    min_size=1,
    max_size=120,
)

BASE = 0x0100_0000


def run_interleaving(config, ops, concurrent=True):
    """Issue ops (concurrently or serially), run to quiescence, return machine."""
    machine = Manycore(config)
    pending = {"count": 0}

    def issue(core, kind, address, value):
        pending["count"] += 1

        def done(*_args):
            pending["count"] -= 1

        if kind == "load":
            machine.caches[core].load(address, done)
        elif kind == "store":
            machine.caches[core].store(address, value, done)
        else:
            machine.caches[core].rmw(address, done)

    if concurrent:
        for core, kind, line_idx, word_idx, value in ops:
            issue(core, kind, BASE + line_idx * 64 + word_idx * 8, value)
        machine.run(max_events=50_000_000)
    else:
        for core, kind, line_idx, word_idx, value in ops:
            issue(core, kind, BASE + line_idx * 64 + word_idx * 8, value)
            machine.run(max_events=50_000_000)
    assert pending["count"] == 0, "some operations never completed"
    return machine


class TestRandomInterleavings:
    @SETTINGS
    @given(ops=OPS)
    def test_baseline_concurrent_ops_stay_coherent(self, ops):
        machine = run_interleaving(baseline_config(num_cores=8), ops)
        machine.check_coherence()

    @SETTINGS
    @given(ops=OPS)
    def test_widir_concurrent_ops_stay_coherent(self, ops):
        machine = run_interleaving(widir_config(num_cores=8), ops)
        machine.check_coherence()

    @SETTINGS
    @given(ops=OPS)
    def test_serial_ops_last_writer_wins(self, ops):
        """With serialized operations, every word reads as its last write."""
        machine = run_interleaving(widir_config(num_cores=8), ops, concurrent=False)
        machine.check_coherence()
        last_write = {}
        counters = {}
        for _core, kind, line_idx, word_idx, value in ops:
            key = (line_idx, word_idx)
            if kind == "store":
                last_write[key] = value
                counters.pop(key, None)
            elif kind == "rmw":
                counters[key] = counters.get(key, last_write.get(key, 0)) + 1
        results = {}
        for (line_idx, word_idx) in last_write | counters:
            address = BASE + line_idx * 64 + word_idx * 8
            machine.caches[0].load(
                address, lambda v, k=(line_idx, word_idx): results.__setitem__(k, v)
            )
        machine.run(max_events=10_000_000)
        for key, value in results.items():
            if key in counters:
                assert value == counters[key], f"rmw count mismatch at {key}"
            else:
                assert value == last_write[key], f"lost store at {key}"

    @SETTINGS
    @given(
        num_rmws=st.integers(1, 12),
        cores=st.integers(2, 8),
        seed=st.integers(0, 100),
    )
    def test_concurrent_rmw_storm_sums_exactly(self, num_rmws, cores, seed):
        """K cores x N concurrent atomics on one word total exactly K*N,
        whether served wired or wireless."""
        for config in (baseline_config(num_cores=8), widir_config(num_cores=8)):
            machine = Manycore(config)
            address = BASE + (seed % 4) * 64
            remaining = {c: num_rmws for c in range(cores)}

            def chain(core):
                if remaining[core] == 0:
                    return
                remaining[core] -= 1
                machine.caches[core].rmw(address, lambda _old, c=core: chain(c))

            for core in range(cores):
                chain(core)
            machine.run(max_events=80_000_000)
            assert all(v == 0 for v in remaining.values())
            out = []
            machine.caches[0].load(address, out.append)
            machine.run(max_events=1_000_000)
            assert out[0] == cores * num_rmws
            machine.check_coherence()


class TestDeterminism:
    def test_identical_runs_produce_identical_cycles(self):
        ops = [
            (c % 8, kind, c % 4, c % 8, c * 7)
            for c, kind in enumerate(["load", "store", "rmw"] * 20)
        ]
        cycles = []
        for _ in range(2):
            machine = run_interleaving(widir_config(num_cores=8, seed=5), ops)
            cycles.append(machine.sim.now)
        assert cycles[0] == cycles[1]

    def test_different_seeds_may_differ_but_stay_correct(self):
        ops = [(c % 8, "rmw", 0, 0, 0) for c in range(24)]
        for seed in (1, 2):
            machine = run_interleaving(widir_config(num_cores=8, seed=seed), ops)
            out = []
            machine.caches[0].load(BASE, out.append)
            machine.run(max_events=1_000_000)
            assert out[0] == 24
