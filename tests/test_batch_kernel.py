"""Unit tests for the batched (cohort) event kernel.

The contract under test is the one :mod:`repro.engine.batch` documents:
the cohort queue and the simulator's batched drain reproduce the heap
kernel's ``(time, seq)`` total order *exactly* — same callback execution
order, same clock values, same ``until``/``max_events``/``stop``
semantics — including the awkward corners (spill-heap crossover, events
scheduled for the current cycle mid-drain, tombstone-only cohorts).
The golden-digest suite proves the same thing end-to-end on full runs;
these tests pin each mechanism in isolation so a violation fails with a
readable diff instead of a digest mismatch.
"""

import pytest

from repro.engine.batch import (
    COHORT_WINDOW,
    CohortQueue,
    batched_default,
    set_batched_default,
)
from repro.engine.errors import SimulationError
from repro.engine.events import EventQueue
from repro.engine.simulator import Simulator


def _mixed_schedule(sim, fired):
    """A workload exercising same-cycle order, far spills, and re-entry."""
    sim.schedule(3, lambda: fired.append("a@3"))
    sim.schedule(3, lambda: fired.append("b@3"))
    # Beyond the ring window: must spill and come back in order.
    sim.schedule(COHORT_WINDOW + 10, lambda: fired.append("far"))
    sim.schedule(0, lambda: fired.append("now"))

    def reenter():
        fired.append("re@5")
        # Same-cycle append during the cohort drain.
        sim.schedule(0, lambda: fired.append("re-same@5"))
        sim.schedule(2, lambda: fired.append("re-later@7"))

    sim.schedule(5, reenter)


class TestCohortQueue:
    def test_window_must_be_power_of_two(self):
        with pytest.raises(SimulationError):
            CohortQueue(window=3)
        with pytest.raises(SimulationError):
            CohortQueue(window=0)

    def test_empty_queue(self):
        q = CohortQueue()
        assert len(q) == 0
        assert q.peek_time() is None
        with pytest.raises(SimulationError):
            q.pop()

    def test_pop_order_matches_heap_queue(self):
        # Same deterministic pseudo-random schedule into both queues,
        # including times beyond the cohort window (spill path).
        schedule = []
        state = 12345
        for i in range(300):
            state = (state * 6364136223846793005 + 1442695040888963407) % 2**64
            schedule.append((state % (2 * COHORT_WINDOW), i))
        heap_q, cohort_q = EventQueue(), CohortQueue()
        heap_order, cohort_order = [], []
        for time, tag in schedule:
            heap_q.schedule(time, lambda t=tag: heap_order.append(t))
            cohort_q.schedule(time, lambda t=tag: cohort_order.append(t))
        while len(heap_q):
            heap_q.pop().callback()
        while len(cohort_q):
            cohort_q.pop().callback()
        assert cohort_order == heap_order

    def test_spill_crossover_preserves_seq_order(self):
        # Events for cycle W+1 scheduled BEFORE the window reaches it spill;
        # one scheduled AFTER advance_base buckets directly. Spilled events
        # carry smaller seqs, so they must fire first.
        q = CohortQueue(window=8)
        fired = []
        q.schedule(9, lambda: fired.append("spilled-0"))
        q.schedule(9, lambda: fired.append("spilled-1"))
        q.advance_base(9)  # ring now covers [9, 17); spill pulled in
        q.schedule(9, lambda: fired.append("bucketed"))
        while len(q):
            q.pop().callback()
        assert fired == ["spilled-0", "spilled-1", "bucketed"]

    def test_cancelled_events_are_skipped_everywhere(self):
        q = CohortQueue(window=8)
        near = q.schedule(2, lambda: pytest.fail("cancelled near event ran"))
        far = q.schedule(100, lambda: pytest.fail("cancelled far event ran"))
        keep = q.schedule(3, lambda: None)
        near.cancel()
        far.cancel()
        assert q.peek_time() == 3
        assert q.pop() is keep

    def test_peek_time_considers_spill_head(self):
        q = CohortQueue(window=8)
        q.schedule(50, lambda: None)  # beyond window: spills
        assert q.peek_time() == 50


class TestBatchedSimulatorParity:
    """The batched drain must be observation-identical to the heap drain."""

    def _run_both(self, populate, **run_kwargs):
        results = []
        for batched in (False, True):
            sim = Simulator(batched=batched)
            fired = []
            populate(sim, fired)
            end = sim.run(**run_kwargs)
            results.append((fired, end, sim.events_executed))
        heap_result, batched_result = results
        assert batched_result == heap_result
        return batched_result

    def test_kernel_flag_selects_queue(self):
        assert isinstance(Simulator(batched=True).queue, CohortQueue)
        assert isinstance(Simulator(batched=False).queue, EventQueue)

    def test_full_drain_order_and_clock(self):
        fired, end, executed = self._run_both(_mixed_schedule)
        assert fired == [
            "now", "a@3", "b@3", "re@5", "re-same@5", "re-later@7", "far",
        ]
        assert end == COHORT_WINDOW + 10
        assert executed == 7

    def test_until_bound_leaves_clock_at_until(self):
        fired, end, _ = self._run_both(_mixed_schedule, until=6)
        assert fired == ["now", "a@3", "b@3", "re@5", "re-same@5"]
        assert end == 6

    def test_max_events_raises_before_excess_callback(self):
        for batched in (False, True):
            sim = Simulator(batched=batched)
            fired = []
            for i in range(5):
                sim.schedule(1, lambda i=i: fired.append(i))
            with pytest.raises(SimulationError):
                sim.run(max_events=3)
            assert fired == [0, 1, 2], f"batched={batched}"

    def test_stop_mid_cohort_keeps_tail(self):
        def populate(sim, fired):
            sim.schedule(1, lambda: fired.append("first"))
            sim.schedule(1, sim.stop)
            sim.schedule(1, lambda: fired.append("tail"))

        for batched in (False, True):
            sim = Simulator(batched=batched)
            fired = []
            populate(sim, fired)
            sim.run()
            assert fired == ["first"], f"batched={batched}"
            assert sim.pending_events == 1, f"batched={batched}"
            sim.run()  # resuming drains the kept tail
            assert fired == ["first", "tail"], f"batched={batched}"

    def test_tombstone_only_cohort_does_not_advance_clock(self):
        # A cycle whose every event was cancelled must not become ``now``
        # (the heap path pops dead heads before reading the time).
        for batched in (False, True):
            sim = Simulator(batched=batched)
            seen = []
            dead_a = sim.schedule(2, lambda: pytest.fail("dead ran"))
            dead_b = sim.schedule(2, lambda: pytest.fail("dead ran"))
            sim.schedule(9, lambda: seen.append(sim.now))
            dead_a.cancel()
            dead_b.cancel()
            sim.run()
            assert seen == [9], f"batched={batched}"

    def test_cancel_during_same_cycle_cohort(self):
        # An event cancelled by an earlier event of the SAME cycle must not
        # run — in either kernel, whatever list/heap position it holds.
        for batched in (False, True):
            sim = Simulator(batched=batched)
            fired = []
            victim = sim.schedule(4, lambda: fired.append("victim"))
            sim.schedule(4, lambda: fired.append("killer"))
            # killer is scheduled after victim, so victim fires first; kill
            # a later same-cycle event from the first one instead:
            victim2 = sim.schedule(4, lambda: fired.append("victim2"))
            victim.callback = lambda: (fired.append("assassin"), victim2.cancel())
            sim.run()
            assert fired == ["assassin", "killer"], f"batched={batched}"

    def test_long_horizon_rescheduling_chain(self):
        # A self-rescheduling event that hops half a window each time walks
        # the ring across many advance_base re-centerings; the heap kernel
        # trivially agrees — both must end at the same cycle and count.
        hop = COHORT_WINDOW // 2 + 7

        def populate(sim, fired):
            def tick(remaining):
                fired.append(sim.now)
                if remaining:
                    sim.schedule(hop, lambda: tick(remaining - 1))

            sim.schedule(0, lambda: tick(10))

        fired, end, executed = self._run_both(populate)
        assert fired == [i * hop for i in range(11)]
        assert end == 10 * hop
        assert executed == 11


class TestBatchedDefault:
    def test_set_batched_default_round_trips(self):
        original = batched_default()
        try:
            previous = set_batched_default(not original)
            assert previous == original
            assert batched_default() == (not original)
            assert Simulator().batched == (not original)
        finally:
            set_batched_default(original)

    def test_env_flag_parsing(self, monkeypatch):
        from repro.engine import batch

        for raw, expected in [
            ("0", False), ("false", False), ("off", False), ("no", False),
            ("1", True), ("true", True), ("", True), ("weird", True),
        ]:
            monkeypatch.setenv("REPRO_BATCHED_KERNEL", raw)
            assert batch._env_default() is expected, raw
        monkeypatch.delenv("REPRO_BATCHED_KERNEL")
        assert batch._env_default() is True
