"""Unit tests for the WiDir wireless protocol transitions (Tables I & II)."""

import pytest

from repro.config import widir_config
from repro.system import Manycore


ADDR = 0x0002_0000


def make_machine(cores=8, max_wired_sharers=3):
    return Manycore(widir_config(num_cores=cores, max_wired_sharers=max_wired_sharers))


def do_load(machine, core, address):
    out = []
    machine.caches[core].load(address, out.append)
    machine.run(max_events=5_000_000)
    return out[0]


def do_store(machine, core, address, value):
    done = []
    machine.caches[core].store(address, value, lambda: done.append(True))
    machine.run(max_events=5_000_000)
    assert done


def do_rmw(machine, core, address):
    out = []
    machine.caches[core].rmw(address, out.append)
    machine.run(max_events=5_000_000)
    return out[0]


def line_state(machine, core, address):
    entry = machine.caches[core].array.lookup(
        machine.amap.line_of(address), touch=False
    )
    return entry.state if entry else "I"


def dir_entry(machine, address):
    line = machine.amap.line_of(address)
    home = machine.amap.home_of(line)
    return machine.directories[home].array.lookup(line, touch=False)


def share_widely(machine, address, readers):
    for core in readers:
        do_load(machine, core, address)


class TestSToWTransition:
    def test_fourth_sharer_triggers_wireless(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(3))
        assert dir_entry(machine, ADDR).state == "S"
        do_load(machine, 3, ADDR)  # 4 > MaxWiredSharers=3
        entry = dir_entry(machine, ADDR)
        assert entry.state == "W"
        assert entry.sharer_count == 4
        for core in range(4):
            assert line_state(machine, core, ADDR) == "W"
        machine.check_coherence()

    def test_threshold_respects_configuration(self):
        machine = make_machine(max_wired_sharers=2)
        share_widely(machine, ADDR, range(3))
        assert dir_entry(machine, ADDR).state == "W"

    def test_write_miss_can_trigger_transition(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(3))
        do_store(machine, 5, ADDR, 77)  # non-sharer GetX, 4 > 3
        entry = dir_entry(machine, ADDR)
        assert entry.state == "W"
        # The triggering writer performed its write wirelessly.
        assert do_load(machine, 0, ADDR) == 77
        machine.check_coherence()

    def test_sharer_count_not_identities_in_w(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(4))
        entry = dir_entry(machine, ADDR)
        assert entry.sharers == set()          # pointers reinterpreted
        assert entry.sharer_count == 4
        assert entry.broadcast is False         # always zero in W


class TestWirelessOperation:
    def test_wireless_write_updates_all_sharers(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(5))
        do_store(machine, 2, ADDR, 4242)
        for core in range(5):
            assert do_load(machine, core, ADDR) == 4242
        machine.check_coherence()

    def test_wireless_write_does_not_invalidate(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(5))
        before = {c: line_state(machine, c, ADDR) for c in range(5)}
        do_store(machine, 0, ADDR, 1)
        after = {c: line_state(machine, c, ADDR) for c in range(5)}
        assert before == after == {c: "W" for c in range(5)}

    def test_wireless_writes_are_word_granular(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(4))
        do_store(machine, 0, ADDR, 1)
        do_store(machine, 1, ADDR + 8, 2)
        assert do_load(machine, 3, ADDR) == 1
        assert do_load(machine, 3, ADDR + 8) == 2

    def test_home_llc_tracks_wireless_updates(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(4))
        do_store(machine, 0, ADDR, 31)
        entry = dir_entry(machine, ADDR)
        assert entry.data.get(0) == 31
        assert entry.dirty

    def test_new_sharer_joins_via_wired_upgrade(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(4))
        do_store(machine, 0, ADDR, 9)
        count_before = dir_entry(machine, ADDR).sharer_count
        assert do_load(machine, 6, ADDR) == 9  # join: WirUpgr path
        entry = dir_entry(machine, ADDR)
        assert entry.state == "W"
        assert entry.sharer_count == count_before + 1
        assert line_state(machine, 6, ADDR) == "W"

    def test_wireless_rmw_atomicity(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(5))
        for i in range(10):
            assert do_rmw(machine, i % 5, ADDR) == i
        machine.check_coherence()


class TestUpdateCountSelfInvalidation:
    def test_inactive_sharer_self_invalidates(self):
        machine = make_machine()
        threshold = machine.config.directory.update_count_threshold
        share_widely(machine, ADDR, range(4))
        # Core 3 stops touching the line; others write past the threshold.
        for i in range(threshold + 2):
            do_store(machine, i % 3, ADDR, i)
        assert line_state(machine, 3, ADDR) == "I"
        machine.check_coherence()

    def test_active_sharer_survives(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(4))
        for i in range(8):
            do_store(machine, i % 3, ADDR, i)
            do_load(machine, 3, ADDR)  # stays interested
        assert line_state(machine, 3, ADDR) == "W"

    def test_update_count_resets_on_local_access(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(4))
        do_store(machine, 0, ADDR, 1)
        do_store(machine, 1, ADDR, 2)
        do_load(machine, 3, ADDR)
        entry = machine.caches[3].array.lookup(machine.amap.line_of(ADDR))
        assert entry.update_count == 0


class TestWToSTransition:
    def test_departures_trigger_downgrade(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(5))  # W, count 5
        # Evict from one cache: count drops to 4, still W.
        cache = machine.caches[4]
        cache._evict(cache.array.lookup(machine.amap.line_of(ADDR)))
        machine.run(max_events=5_000_000)
        assert dir_entry(machine, ADDR).state == "W"
        # Second eviction: count reaches MaxWiredSharers=3 -> downgrade.
        cache = machine.caches[3]
        cache._evict(cache.array.lookup(machine.amap.line_of(ADDR)))
        machine.run(max_events=5_000_000)
        entry = dir_entry(machine, ADDR)
        assert entry.state == "S"
        assert entry.sharers == {0, 1, 2}
        for core in range(3):
            assert line_state(machine, core, ADDR) == "S"
        machine.check_coherence()

    def test_dirty_line_written_to_memory_on_downgrade(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(5))
        do_store(machine, 0, ADDR, 123)
        for core in (4, 3):
            cache = machine.caches[core]
            cache._evict(cache.array.lookup(machine.amap.line_of(ADDR)))
            machine.run(max_events=5_000_000)
        assert dir_entry(machine, ADDR).state == "S"
        assert machine.memory.read_word(machine.amap.line_of(ADDR), 0) == 123

    def test_values_survive_full_w_cycle(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(5))
        do_store(machine, 1, ADDR, 321)
        for core in (4, 3):
            cache = machine.caches[core]
            cache._evict(cache.array.lookup(machine.amap.line_of(ADDR)))
            machine.run(max_events=5_000_000)
        # Back in S: wired protocol resumes with the wireless-era value.
        assert do_load(machine, 7, ADDR) == 321
        do_store(machine, 7, ADDR, 99)
        assert do_load(machine, 0, ADDR) == 99
        machine.check_coherence()


class TestOscillation:
    def test_repeated_w_s_cycles_remain_coherent(self):
        machine = make_machine()
        line = machine.amap.line_of(ADDR)
        for round_id in range(4):
            share_widely(machine, ADDR, range(5))
            assert dir_entry(machine, ADDR).state == "W"
            do_store(machine, 0, ADDR, 1000 + round_id)
            for core in (4, 3):
                entry = machine.caches[core].array.lookup(line, touch=False)
                if entry is not None:
                    machine.caches[core]._evict(entry)
                    machine.run(max_events=5_000_000)
            assert do_load(machine, 1, ADDR) == 1000 + round_id
        machine.check_coherence()


class TestBaselineEquivalenceBelowThreshold:
    def test_few_sharers_stay_wired(self):
        machine = make_machine()
        share_widely(machine, ADDR, range(3))
        assert dir_entry(machine, ADDR).state == "S"
        do_store(machine, 0, ADDR, 5)
        # Plain invalidation semantics below the threshold.
        assert line_state(machine, 1, ADDR) == "I"
        assert line_state(machine, 2, ADDR) == "I"
        machine.check_coherence()
