"""Tests for the observability subsystem (`repro.obs`).

Covers the four contracts from docs/OBSERVABILITY.md:

* **digest neutrality** — simulated behaviour is byte-identical with
  tracing off, on, and on with non-default knobs;
* **orphan-span audit** — every span opened during a real run resolves by
  queue drain;
* **capture/export integrity** — the capture document round-trips through
  the Perfetto exporter and passes the same schema validation CI runs;
* **integration** — the flight recorder backs `dump_stuck_state` and the
  verify failure artifacts.
"""

import json
from dataclasses import replace

import pytest

from repro.config.presets import baseline_config, widir_config
from repro.config.system import ObsConfig
from repro.harness.debug import dump_stuck_state
from repro.harness.runner import run_app
from repro.obs import (
    GLOBAL_NODE,
    TRACE_SCHEMA_VERSION,
    FlightRecorder,
    Span,
    TransactionTracer,
    counter_track_names,
    export_chrome_trace,
    render_text_timeline,
    state_payload,
    summarize_capture,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)

_APP = "radiosity"
_CORES = 16
_MEMOPS = 400


def _run(config, memops=_MEMOPS, sink=None):
    return run_app(_APP, config, memops, trace_seed=3, machine_sink=sink)


@pytest.fixture(scope="module")
def traced():
    """One traced WiDir run shared by the capture/export tests."""
    cfg = replace(
        widir_config(num_cores=_CORES, seed=42), obs=ObsConfig(enabled=True)
    )
    sink = []
    result = _run(cfg, sink=sink)
    machine = sink[0]
    return machine, machine.obs.capture(app=_APP), result


# ----------------------------------------------------------------- spans


class TestSpan:
    def test_lifecycle(self):
        span = Span(1, "txn", "GetS", 3, 0x40, 100)
        assert not span.resolved
        span.phase(110, "nack")
        span.close(150)
        assert span.resolved
        assert span.status == "closed"
        assert span.duration == 50
        assert span.phases == [(110, "nack")]

    def test_close_and_cancel_idempotent(self):
        span = Span(1, "txn", "GetS", 0, 0, 10)
        span.close(20)
        span.cancel(30, "late")  # no-op: already closed
        span.close(40)
        assert span.close_cycle == 20
        assert span.status == "closed"
        assert span.reason is None

    def test_phase_after_resolve_is_noop(self):
        span = Span(1, "frame", "WirUpd", 0, 0, 10)
        span.cancel(12, "jammed")
        span.phase(13, "ghost")
        assert span.phases is None  # lazily allocated, never touched

    def test_roundtrip(self):
        span = Span(7, "frame", "WirUpd", 2, 0x80, 5)
        span.phase(6, "collision")
        span.cancel(9, "squashed")
        clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert clone.to_dict() == span.to_dict()

    def test_open_span_has_no_duration(self):
        assert Span(1, "tone", "ToneAck", GLOBAL_NODE, 4, 0).duration is None


class TestTransactionTracer:
    def test_ids_deterministic_and_monotonic(self):
        tracer = TransactionTracer()
        sids = [tracer.open("txn", "GetS", 0, i, i).sid for i in range(5)]
        assert sids == [1, 2, 3, 4, 5]

    def test_audit_reports_only_open_spans(self):
        tracer = TransactionTracer()
        a = tracer.open("txn", "GetS", 0, 1, 0)
        b = tracer.open("txn", "GetX", 1, 2, 0)
        c = tracer.open("frame", "WirUpd", 2, 3, 0)
        tracer.close(a, 10)
        tracer.cancel(c, 11, "jammed")
        assert tracer.audit() == [b]
        assert tracer.open_spans == 1
        tracer.close(b, 12)
        assert tracer.audit() == []
        assert tracer.open_spans == 0

    def test_none_span_is_safe(self):
        tracer = TransactionTracer()
        tracer.close(None, 5)
        tracer.cancel(None, 5, "x")
        assert tracer.open_spans == 0

    def test_by_category(self):
        tracer = TransactionTracer()
        tracer.open("txn", "GetS", 0, 1, 0)
        tracer.open("frame", "WirUpd", 0, 1, 0)
        tracer.open("txn", "PutM", 0, 2, 0)
        cats = tracer.by_category()
        assert sorted(cats) == ["frame", "txn"]
        assert len(cats["txn"]) == 2


# -------------------------------------------------------- flight recorder


class TestFlightRecorder:
    def test_merged_order_and_global_ring(self):
        rec = FlightRecorder(num_nodes=2, depth=8)
        rec.record(1, 10, "b")
        rec.record(0, 10, "a")  # same cycle: seq breaks the tie
        rec.record(GLOBAL_NODE, 5, "early", line=0x40, detail="d")
        kinds = [kind for _c, _s, _n, kind, _l, _d in rec.events()]
        assert kinds == ["early", "b", "a"]

    def test_ring_bound_and_dropped_count(self):
        rec = FlightRecorder(num_nodes=1, depth=4)
        for cycle in range(10):
            rec.record(0, cycle, "e")
        events = rec.events()
        assert len(events) == 4
        assert rec.dropped == 6
        assert [e[0] for e in events] == [6, 7, 8, 9]

    def test_payload_tail_and_render(self):
        rec = FlightRecorder(num_nodes=1, depth=4)
        for cycle in range(10):
            rec.record(0, cycle, "e", line=0x100)
        payload = rec.to_payload(last=2)
        assert payload["schema"] == TRACE_SCHEMA_VERSION
        assert len(payload["events"]) == 2
        lines = FlightRecorder.render_payload(payload, indent="  ")
        assert any("line=0x100" in line for line in lines)
        assert any("aged out" in line for line in lines)  # dropped note


# ------------------------------------------------------ digest neutrality


class TestDigestNeutrality:
    @pytest.mark.parametrize("make", [baseline_config, widir_config])
    def test_tracing_never_changes_the_simulation(self, make):
        """The acceptance bar: cycles, instructions, and the full stats
        dump are identical with tracing off, on, and on with non-default
        recorder depth + sampling interval."""
        base = make(num_cores=8, seed=42)
        digests = []
        for obs in (
            ObsConfig(enabled=False),
            ObsConfig(enabled=True),
            ObsConfig(enabled=True, flight_recorder_depth=16, sample_interval=7),
        ):
            result = _run(replace(base, obs=obs), memops=300)
            digests.append(
                (
                    result.cycles,
                    result.instructions,
                    json.dumps(result.stats_counters, sort_keys=True),
                )
            )
        assert digests[0] == digests[1] == digests[2]


# ------------------------------------------------------- traced captures


class TestTracedCapture:
    def test_capture_schema_and_meta(self, traced):
        _machine, capture, result = traced
        assert capture["schema"] == TRACE_SCHEMA_VERSION
        meta = capture["meta"]
        assert meta["app"] == _APP
        assert meta["protocol"] == "widir"
        assert meta["num_cores"] == _CORES
        assert meta["cycles"] == result.cycles

    def test_spans_cover_wired_and_wireless_work(self, traced):
        _machine, capture, _result = traced
        cats = {span["cat"] for span in capture["spans"]}
        assert "txn" in cats
        assert "frame" in cats  # WiDir run: wireless frames were traced
        names = {span["name"] for span in capture["spans"]}
        assert names & {"GetS", "GetX"}
        assert any(name.startswith("dir.") for name in names)

    def test_orphan_audit_clean(self, traced):
        machine, capture, _result = traced
        assert capture["orphans"] == []
        assert machine.obs.orphans == []
        assert machine.obs.tracer.audit() == []

    def test_counter_tracks_sampled(self, traced):
        _machine, capture, _result = traced
        tracks = {t["name"]: t["samples"] for t in capture["counters"]}
        assert len(tracks) >= 3
        assert "dir.w_lines" in tracks
        for samples in tracks.values():
            cycles = [cycle for cycle, _v in samples]
            assert cycles == sorted(cycles)  # monotone timestamps

    def test_chrome_export_validates(self, traced):
        _machine, capture, _result = traced
        trace = export_chrome_trace(capture)
        assert validate_chrome_trace(trace) == []
        assert len(counter_track_names(trace)) >= 3
        # one thread track per node, plus the wireless track
        thread_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert "wireless" in thread_names
        assert len(thread_names) == _CORES + 1

    def test_chrome_export_file_roundtrip(self, traced, tmp_path):
        _machine, capture, _result = traced
        path = write_chrome_trace(capture, tmp_path / "trace.json")
        assert validate_chrome_trace_file(path) == []

    def test_validator_catches_broken_documents(self):
        assert validate_chrome_trace({}) != []
        bad = {
            "traceEvents": [
                {"ph": "b", "cat": "txn", "id": "1", "name": "GetS",
                 "pid": 0, "tid": 0, "ts": 10},
            ]
        }
        assert any("never ended" in p for p in validate_chrome_trace(bad))
        bad["traceEvents"].append(
            {"ph": "e", "cat": "txn", "id": "1", "name": "GetS",
             "pid": 0, "tid": 0, "ts": 5}
        )
        assert any("before" in p for p in validate_chrome_trace(bad))

    def test_text_timeline_and_summary(self, traced):
        _machine, capture, _result = traced
        text = render_text_timeline(capture, limit=50)
        assert "elided" in text  # the run produced far more than 50 rows
        assert len(text.splitlines()) == 51
        summary = summarize_capture(capture)
        assert "spans:" in summary
        assert "flight recorder:" in summary
        assert "counter" in summary

    def test_capture_is_json_serializable(self, traced):
        _machine, capture, _result = traced
        clone = json.loads(json.dumps(capture, sort_keys=True))
        assert clone["meta"] == capture["meta"]
        assert len(clone["spans"]) == len(capture["spans"])


# ----------------------------------------------------- debug integration


class TestDebugDump:
    def test_traced_machine_appends_recorded_history(self, traced):
        machine, _capture, _result = traced
        lines = dump_stuck_state(machine, [])
        assert lines[0].startswith("--- stuck state at cycle")
        assert any("recorded events" in line for line in lines)

    def test_untraced_machine_renders_state_only(self):
        cfg = widir_config(num_cores=8, seed=42)
        sink = []
        _run(cfg, memops=200, sink=sink)
        lines = dump_stuck_state(sink[0], [])
        assert lines[0].startswith("--- stuck state at cycle")
        assert not any("recorded events" in line for line in lines)

    def test_state_payload_renders_through_recorder_path(self, traced):
        machine, _capture, _result = traced
        payload = state_payload(machine, [])
        assert payload["schema"] == TRACE_SCHEMA_VERSION
        FlightRecorder.render_payload(payload)  # must not raise


# ---------------------------------------------------- verify integration


class TestVerifyTraceField:
    def test_failing_trial_carries_flight_recorder_window(self):
        from repro.verify.fuzz import TRACE_TAIL, execute_trial, generate_trial

        spec = generate_trial(seed=3, index=0, num_cores=4, ops_per_core=20)
        spec.max_events = 200  # starve the run: bounded-events failure
        result = execute_trial(spec)
        assert not result.ok
        assert result.trace is not None
        assert result.trace["schema"] == TRACE_SCHEMA_VERSION
        assert 0 < len(result.trace["events"]) <= TRACE_TAIL

    def test_trace_capture_is_digest_neutral_and_optional(self):
        from repro.verify.fuzz import execute_trial, generate_trial

        spec = generate_trial(seed=3, index=1, num_cores=4, ops_per_core=15)
        with_trace = execute_trial(spec, capture_trace=True)
        without = execute_trial(spec, capture_trace=False)
        assert with_trace.ok and without.ok
        assert with_trace.digest == without.digest
        assert with_trace.cycles == without.cycles
        assert with_trace.trace is None  # only failures carry the window

    def test_artifact_roundtrips_trace_payload(self, tmp_path):
        from repro.verify.artifacts import FailureArtifact
        from repro.verify.fuzz import generate_trial

        trace = {
            "schema": TRACE_SCHEMA_VERSION,
            "depth": 256,
            "num_nodes": 4,
            "dropped": 0,
            "events": [[10, 0, "noc.send", 64, "GetS"]],
        }
        artifact = FailureArtifact(
            campaign="smoke",
            seed=0,
            trial_index=1,
            failure="synthetic",
            spec=generate_trial(seed=0, index=1, num_cores=4, ops_per_core=5),
            trace=trace,
        )
        loaded = FailureArtifact.load(artifact.save(tmp_path / "a.json"))
        assert loaded.trace == trace
        FlightRecorder.render_payload(loaded.trace)  # renders like any dump

    def test_old_artifacts_without_trace_still_load(self, tmp_path):
        from repro.verify.artifacts import FailureArtifact
        from repro.verify.fuzz import generate_trial

        artifact = FailureArtifact(
            campaign="smoke",
            seed=0,
            trial_index=0,
            failure="synthetic",
            spec=generate_trial(seed=0, index=0, num_cores=4, ops_per_core=5),
        )
        payload = artifact.to_dict()
        payload.pop("trace", None)  # a pre-tracing artifact
        path = tmp_path / "old.json"
        path.write_text(json.dumps(payload))
        assert FailureArtifact.load(path).trace is None


# -------------------------------------------------- latency percentiles


class TestRunLatencyPercentiles:
    def test_result_reports_percentiles(self, traced):
        _machine, _capture, result = traced
        summary = result.latency_percentiles()
        assert summary["count"] > 0
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        # survives the executor's JSON cache roundtrip
        from repro.harness.runner import SimulationResult

        clone = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone.latency_percentiles() == summary
