"""Tests for address decomposition and home mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.errors import ConfigurationError
from repro.mem.address import AddressMap


class TestDecomposition:
    def test_line_of_strips_offset(self):
        amap = AddressMap(64, 16)
        assert amap.line_of(0x1000) == 0x40
        assert amap.line_of(0x103F) == 0x40
        assert amap.line_of(0x1040) == 0x41

    def test_base_of_inverts_line_of(self):
        amap = AddressMap(64, 16)
        for address in (0, 0x1234, 0xFFFF8):
            line = amap.line_of(address)
            assert amap.line_of(amap.base_of(line)) == line

    def test_word_of_is_8_byte_granular(self):
        amap = AddressMap(64, 16)
        assert amap.word_of(0x1000) == 0
        assert amap.word_of(0x1008) == 1
        assert amap.word_of(0x1038) == 7

    def test_words_per_line(self):
        assert AddressMap(64, 16).words_per_line() == 8
        assert AddressMap(128, 16).words_per_line() == 16

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            AddressMap(96, 16)


class TestHomeMapping:
    @given(st.integers(0, 2**40), st.sampled_from([4, 8, 16, 32, 64]))
    @settings(max_examples=100, deadline=None)
    def test_property_home_in_range(self, line, cores):
        amap = AddressMap(64, cores)
        assert 0 <= amap.home_of(line) < cores

    @given(st.integers(0, 2**40))
    @settings(max_examples=50, deadline=None)
    def test_property_controller_in_range(self, line):
        amap = AddressMap(64, 16, num_memory_controllers=4)
        assert 0 <= amap.controller_of(line) < 4

    def test_home_mapping_is_stable(self):
        amap = AddressMap(64, 16)
        assert amap.home_of(12345) == amap.home_of(12345)

    def test_strided_lines_spread_over_homes(self):
        """The regression this mapping exists for: every core's i-th private
        line used to collide on one home slice under modulo interleaving."""
        amap = AddressMap(64, 16)
        # 64 cores' "line i" at a 16384-line stride (1 MiB regions).
        homes = [amap.home_of(0x400000 + core * 16384) for core in range(64)]
        # They must not all land on one home (modulo mapping put them on 1).
        assert len(set(homes)) > 4

    def test_sequential_lines_spread_over_homes(self):
        amap = AddressMap(64, 16)
        homes = [amap.home_of(line) for line in range(4096)]
        counts = {h: homes.count(h) for h in set(homes)}
        # Roughly balanced: no slice should own more than 2x its fair share.
        assert max(counts.values()) < 2 * (4096 / 16)
