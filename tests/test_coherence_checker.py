"""Tests for the global coherence invariant checker itself.

The checker is load-bearing test infrastructure: these tests confirm it
actually *catches* violations when they are planted, so a green suite means
something.
"""

import pytest

from repro.coherence.checker import CoherenceChecker
from repro.config import baseline_config, widir_config
from repro.engine.errors import ProtocolError
from repro.system import Manycore


def quiesced_machine(protocol="baseline", cores=4):
    make = widir_config if protocol == "widir" else baseline_config
    machine = Manycore(make(num_cores=cores))
    done = []
    machine.caches[0].store(0x8000, 5, lambda: done.append(1))
    machine.run(max_events=1_000_000)
    machine.caches[1].load(0x8000, lambda v: done.append(v))
    machine.run(max_events=1_000_000)
    assert done == [1, 5]
    return machine


class TestCleanMachinePasses:
    def test_baseline_passes(self):
        quiesced_machine("baseline").check_coherence()

    def test_widir_passes(self):
        quiesced_machine("widir").check_coherence()

    def test_empty_machine_passes(self):
        Manycore(widir_config(num_cores=4)).check_coherence()


class TestPlantedViolationsAreCaught:
    def test_double_exclusive_caught(self):
        machine = quiesced_machine()
        line = machine.amap.line_of(0x8000)
        # Both caches hold S; forge one into M.
        machine.caches[1].array.lookup(line).state = "M"
        with pytest.raises(ProtocolError, match="SWMR"):
            machine.check_coherence()

    def test_exclusive_plus_sharer_caught(self):
        machine = quiesced_machine()
        line = machine.amap.line_of(0x8000)
        machine.caches[0].array.lookup(line).state = "E"
        with pytest.raises(ProtocolError, match="SWMR"):
            machine.check_coherence()

    def test_untracked_sharer_caught(self):
        machine = quiesced_machine()
        line = machine.amap.line_of(0x8000)
        home = machine.amap.home_of(line)
        entry = machine.directories[home].array.lookup(line, touch=False)
        entry.sharers.discard(1)  # forget a genuine sharer
        with pytest.raises(ProtocolError, match="misses sharers"):
            machine.check_coherence()

    def test_wrong_owner_caught(self):
        machine = Manycore(baseline_config(num_cores=4))
        done = []
        machine.caches[0].store(0x8000, 5, lambda: done.append(1))
        machine.run(max_events=1_000_000)
        line = machine.amap.line_of(0x8000)
        home = machine.amap.home_of(line)
        machine.directories[home].array.lookup(line, touch=False).owner = 2
        with pytest.raises(ProtocolError, match="owner"):
            machine.check_coherence()

    def test_divergent_shared_values_caught(self):
        machine = quiesced_machine()
        line = machine.amap.line_of(0x8000)
        machine.caches[1].array.lookup(line).data[0] = 999_999
        with pytest.raises(ProtocolError, match="divergent"):
            machine.check_coherence()

    def test_w_count_less_than_holders_caught(self):
        machine = Manycore(widir_config(num_cores=8))
        for core in range(5):
            out = []
            machine.caches[core].load(0x8000, out.append)
            machine.run(max_events=5_000_000)
        line = machine.amap.line_of(0x8000)
        home = machine.amap.home_of(line)
        entry = machine.directories[home].array.lookup(line, touch=False)
        assert entry.state == "W"
        entry.sharer_count = 2  # fewer than the 5 actual holders
        with pytest.raises(ProtocolError, match="counts"):
            machine.check_coherence()

    def test_busy_entries_exempt_from_accuracy(self):
        """Directory accuracy only holds at quiescence; busy entries skip."""
        machine = quiesced_machine()
        line = machine.amap.line_of(0x8000)
        home = machine.amap.home_of(line)
        entry = machine.directories[home].array.lookup(line, touch=False)
        entry.sharers.discard(1)
        entry.busy = True  # mid-transaction: checker must not flag it
        machine.checker.check(quiescent=True)

    def test_non_quiescent_mode_checks_swmr_only(self):
        machine = quiesced_machine()
        line = machine.amap.line_of(0x8000)
        home = machine.amap.home_of(line)
        machine.directories[home].array.lookup(line, touch=False).sharers.clear()
        machine.checker.check(quiescent=False)  # accuracy skipped
        with pytest.raises(ProtocolError):
            machine.checker.check(quiescent=True)
