"""Hypothesis property tests for the ToneAck channel and BRS backoff.

Complements the directed tests in test_wireless_tone.py and the channel
fuzz in test_wireless_fuzz.py with algebraic properties:

* a ToneAck completes exactly when every registered participant has
  dropped its tone — never before, regardless of drop order;
* dropping twice (or dropping a node that never raised a tone) is
  idempotent and cannot complete an operation early;
* ``BackoffPolicy.delay_for_attempt`` is always in
  ``[1, base * 2**max_exponent]`` and is a pure function of the RNG seed
  and call sequence (bit-for-bit reproducible).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.stats.collectors import StatsRegistry
from repro.wireless.mac import BackoffPolicy
from repro.wireless.tone import ToneChannel

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _channel(tone_cycles: int = 1) -> ToneChannel:
    return ToneChannel(Simulator(0), tone_cycles, StatsRegistry())


# ---------------------------------------------------------------- ToneAck


@SETTINGS
@given(
    participants=st.sets(st.integers(0, 15), min_size=1, max_size=12),
    order_seed=st.integers(0, 2**32 - 1),
    extra_drops=st.integers(0, 3),
)
def test_property_tone_completes_iff_every_participant_dropped(
    participants, order_seed, extra_drops
):
    """Silence fires exactly once, exactly after the *last* distinct
    participant drops — for every drop order and any amount of
    double-dropping along the way."""
    channel = _channel()
    fired = []
    channel.begin(0x40, set(participants), lambda: fired.append(True))

    order = sorted(participants)
    DeterministicRng(order_seed).shuffle(order)

    for i, node in enumerate(order):
        assert channel.in_flight(0x40), "completed before all drops"
        assert not fired
        channel.drop(0x40, node)
        # Idempotence: re-dropping an already-dropped node changes nothing.
        for _ in range(extra_drops):
            channel.drop(0x40, node)
        if i < len(order) - 1:
            assert channel.in_flight(0x40), (
                f"completed early after {i + 1}/{len(order)} drops"
            )

    assert not channel.in_flight(0x40)
    # Callback is scheduled (detection latency), not synchronous:
    assert not fired
    channel.sim.run()
    assert fired == [True]


@SETTINGS
@given(
    participants=st.sets(st.integers(0, 15), min_size=1, max_size=12),
    outsiders=st.sets(st.integers(16, 31), min_size=1, max_size=4),
)
def test_property_tone_ignores_drops_from_non_participants(
    participants, outsiders
):
    """Nodes that never raised a tone cannot silence the channel."""
    channel = _channel()
    fired = []
    channel.begin(0x80, set(participants), lambda: fired.append(True))
    for node in sorted(outsiders):
        channel.drop(0x80, node)
    assert channel.in_flight(0x80)
    channel.sim.run()
    assert not fired


@SETTINGS
@given(
    participants=st.sets(st.integers(0, 15), max_size=8),
    tone_cycles=st.integers(1, 5),
)
def test_property_tone_silence_latency_is_tone_cycles(
    participants, tone_cycles
):
    """The callback fires exactly ``tone_cycles`` after the last drop
    (or after ``begin`` when the participant set is already empty)."""
    channel = _channel(tone_cycles)
    sim = channel.sim
    fired_at = []
    channel.begin(0xC0, set(participants), lambda: fired_at.append(sim.now))
    for node in sorted(participants):
        channel.drop(0xC0, node)
    silent_at = sim.now  # all drops were synchronous at cycle 0
    sim.run()
    assert fired_at == [silent_at + tone_cycles]


# ------------------------------------------------------------ BRS backoff


@SETTINGS
@given(
    base=st.integers(1, 64),
    max_exponent=st.integers(0, 10),
    failures=st.lists(st.integers(1, 40), min_size=1, max_size=30),
    seed=st.integers(0, 2**32 - 1),
)
def test_property_backoff_bounded_and_positive(
    base, max_exponent, failures, seed
):
    policy = BackoffPolicy(base, max_exponent, DeterministicRng(seed))
    bound = base * 2**max_exponent
    for count in failures:
        delay = policy.delay_for_attempt(count)
        assert 1 <= delay <= bound, (base, max_exponent, count, delay)


@SETTINGS
@given(
    base=st.integers(1, 64),
    max_exponent=st.integers(0, 10),
    failures=st.lists(st.integers(1, 40), min_size=1, max_size=30),
    seed=st.integers(0, 2**32 - 1),
)
def test_property_backoff_deterministic_per_seed(
    base, max_exponent, failures, seed
):
    """Two policies built from equal seeds emit identical delay streams."""
    first = BackoffPolicy(base, max_exponent, DeterministicRng(seed))
    second = BackoffPolicy(base, max_exponent, DeterministicRng(seed))
    assert [first.delay_for_attempt(n) for n in failures] == [
        second.delay_for_attempt(n) for n in failures
    ]


@SETTINGS
@given(
    base=st.integers(1, 32),
    max_exponent=st.integers(1, 8),
    seed=st.integers(0, 2**32 - 1),
)
def test_property_backoff_window_saturates_at_max_exponent(
    base, max_exponent, seed
):
    """Past ``max_exponent`` consecutive failures, the window stops
    growing: the delay for any larger failure count obeys the same bound
    as ``max_exponent`` itself."""
    policy = BackoffPolicy(base, max_exponent, DeterministicRng(seed))
    cap = base << (max_exponent - 1)
    for count in (max_exponent, max_exponent + 1, max_exponent + 100):
        assert policy.delay_for_attempt(count) <= cap
