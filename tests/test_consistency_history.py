"""Tests for the execution-history coherence validator, including runs of
both protocols under concurrent traffic."""

import pytest

from repro.coherence.consistency import HistoryRecorder, Violation
from repro.config import baseline_config, widir_config
from repro.engine.rng import DeterministicRng
from repro.system import Manycore

ADDR = 0x0006_0000


def make_recorder(protocol="widir", cores=8):
    make = widir_config if protocol == "widir" else baseline_config
    machine = Manycore(make(num_cores=cores))
    return machine, HistoryRecorder(machine)


def tick(machine, cycles=16):
    """Advance the clock so earlier completions are strictly in the past."""
    machine.sim.schedule(cycles, lambda: None)
    machine.run(max_events=1_000)


class TestValidatorLogic:
    def test_clean_history_passes(self):
        machine, recorder = make_recorder()
        recorder.store(0, ADDR, 5)
        machine.run(max_events=1_000_000)
        recorder.load(1, ADDR)
        machine.run(max_events=1_000_000)
        assert recorder.validate() == []

    def test_unwritten_value_flagged(self):
        machine, recorder = make_recorder()
        recorder.store(0, ADDR, 5)
        machine.run(max_events=1_000_000)
        recorder.load(1, ADDR)
        machine.run(max_events=1_000_000)
        # Corrupt the record: pretend core 1 read a value nobody wrote.
        reads = recorder._reads[ADDR]
        recorder._reads[ADDR] = [reads[0]._replace(value=999)]
        violations = recorder.validate()
        assert violations
        assert "never written" in violations[0].reason

    def test_stale_read_flagged(self):
        machine, recorder = make_recorder()
        recorder.store(0, ADDR, 1)
        machine.run(max_events=1_000_000)
        tick(machine)
        recorder.store(0, ADDR, 2)
        machine.run(max_events=1_000_000)
        tick(machine)
        recorder.load(1, ADDR)
        machine.run(max_events=1_000_000)
        reads = recorder._reads[ADDR]
        # Forge a read of the older value issued after both writes done.
        recorder._reads[ADDR] = [reads[0]._replace(value=1)]
        violations = recorder.validate()
        assert violations
        assert "stale" in violations[0].reason

    def test_initial_value_after_write_flagged(self):
        machine, recorder = make_recorder()
        recorder.store(0, ADDR, 7)
        machine.run(max_events=1_000_000)
        tick(machine)
        recorder.load(1, ADDR)
        machine.run(max_events=1_000_000)
        reads = recorder._reads[ADDR]
        recorder._reads[ADDR] = [reads[0]._replace(value=0)]
        violations = recorder.validate()
        assert violations
        assert "initial value" in violations[0].reason

    def test_concurrent_overlapping_reads_not_flagged(self):
        """A read overlapping two writes may see either: not a violation."""
        machine, recorder = make_recorder()
        recorder.store(0, ADDR, 1)
        recorder.store(1, ADDR, 2)
        recorder.load(2, ADDR)  # issued while both writes in flight
        machine.run(max_events=5_000_000)
        assert recorder.validate() == []


class TestWholeMachineHistories:
    @pytest.mark.parametrize("protocol", ["baseline", "widir"])
    def test_random_traffic_history_is_coherent(self, protocol):
        machine, recorder = make_recorder(protocol)
        rng = DeterministicRng(21)
        remaining = {core: 60 for core in range(8)}

        def step(core):
            if remaining[core] == 0:
                return
            remaining[core] -= 1
            address = ADDR + (rng.next_u64() % 4) * 64
            roll = rng.next_u64() % 10
            if roll < 3:
                recorder.store(
                    core, address, rng.next_u64() % 10**6,
                    lambda c=core: step(c),
                )
            elif roll < 4:
                recorder.rmw(core, address, lambda _o, c=core: step(c))
            else:
                recorder.load(core, address, lambda _v, c=core: step(c))

        for core in range(8):
            step(core)
        machine.run(max_events=100_000_000)
        assert all(v == 0 for v in remaining.values())
        assert recorder.validate() == []
        machine.check_coherence()

    def test_wireless_line_history_is_coherent(self):
        """Heavy read/write sharing on one wireless line leaves a history
        explainable by a single write order."""
        machine, recorder = make_recorder("widir")
        # Drive the line wireless first.
        pending = {"n": 0}
        for core in range(6):
            pending["n"] += 1
            recorder.load(core, ADDR, lambda _v: pending.__setitem__("n", pending["n"] - 1))
        machine.run(max_events=10_000_000)

        remaining = {core: 30 for core in range(6)}

        def step(core):
            if remaining[core] == 0:
                return
            remaining[core] -= 1
            if remaining[core] % 5 == 0:
                recorder.store(
                    core, ADDR, core * 1000 + remaining[core],
                    lambda c=core: step(c),
                )
            else:
                recorder.load(core, ADDR, lambda _v, c=core: step(c))

        for core in range(6):
            step(core)
        machine.run(max_events=100_000_000)
        assert recorder.validate() == []
        machine.check_coherence()
