"""Distributed campaign execution tests (ISSUE 7).

The contract under test: a campaign sharded across N work-stealing
workers — local forks or remote TCP agents speaking the length-prefixed
JSON-RPC protocol — converges to an aggregate ``results.json`` /
``digest.txt`` that is byte-identical to a single-box execution of the
same spec, while worker deaths, duplicate reports, throttled submissions,
and cross-tenant store dedupe all degrade gracefully instead of
corrupting the merge.
"""

import asyncio
import json
import os
import socket
import struct
import threading
import time

import pytest

from repro.harness.campaign import Campaign, CampaignSpec, run_campaign
from repro.harness.distributed import (
    COORDINATOR_NAME,
    Coordinator,
    DistributedError,
    TokenBucket,
    coordinator_endpoint,
    live_status,
    render_live_status,
    run_distributed,
)
from repro.harness.executor import Executor
from repro.harness.ioutils import iter_stale_tmp
from repro.harness.protocol import (
    ERR_BAD_REQUEST,
    ERR_THROTTLED,
    ERR_UNKNOWN_METHOD,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    RpcClient,
    RpcError,
    decode_body,
    encode_frame,
    parse_endpoint,
    recv_frame,
    send_frame,
)
from repro.harness.resultstore import ResultStore, ResultStoreError
from repro.harness.supervisor import RetryPolicy, WorkerSupervisor
from repro.obs.campaign import CampaignTelemetry

APP = "volrend"
CORES = 4
MEMOPS = 120

KEY_A = "a" * 64
KEY_B = "b" * 64


def _spec(name="dist", **overrides):
    defaults = dict(
        name=name, kind="protocols", apps=(APP,), cores=(CORES,), memops=MEMOPS
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def _executor(tmp_path, tag="cache"):
    """Isolated executor: private cache dir so tests never cross-talk."""
    return Executor(workers=1, cache_dir=tmp_path / tag, use_cache=True)


# ----------------------------------------------------------- wire framing


class TestProtocolFraming:
    def _pair(self):
        return socket.socketpair()

    def test_frame_round_trip(self):
        left, right = self._pair()
        try:
            send_frame(left, {"id": 1, "method": "lease", "params": {}})
            assert recv_frame(right) == {
                "id": 1, "method": "lease", "params": {},
            }
        finally:
            left.close()
            right.close()

    def test_frames_are_canonical_compact_json(self):
        frame = encode_frame({"b": 1, "a": 2})
        (length,) = struct.unpack(">I", frame[:4])
        assert frame[4:] == b'{"a":2,"b":1}'
        assert length == len(frame) - 4

    def test_clean_eof_between_frames_is_none(self):
        left, right = self._pair()
        try:
            left.close()
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_eof_mid_frame_is_a_protocol_error(self):
        left, right = self._pair()
        try:
            left.sendall(encode_frame({"x": 1})[:-3])
            left.close()
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_announcement_is_rejected(self):
        left, right = self._pair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_json_body_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_body(b"not json")
        with pytest.raises(ProtocolError):
            decode_body(b"[1, 2]")  # arrays are not valid messages

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:7471") == ("127.0.0.1", 7471)
        for bad in ("localhost", ":7471", "host:", "host:abc"):
            with pytest.raises(ValueError):
                parse_endpoint(bad)


# ----------------------------------------------------------- token bucket


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, capacity=2.0, clock=lambda: clock[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, capacity=2.0, clock=lambda: clock[0])
        bucket.try_acquire()
        bucket.try_acquire()
        assert not bucket.try_acquire()
        clock[0] = 0.5  # 2 tokens/s * 0.5s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_capacity_caps_the_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=100.0, capacity=1.0, clock=lambda: clock[0])
        clock[0] = 60.0
        assert bucket.available <= 1.0
        assert bucket.try_acquire()
        assert not bucket.try_acquire()


# ----------------------------------------------------------- result store


class TestResultStore:
    def test_put_get_round_trip_with_fanout(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.put(KEY_A, {"cycles": 7}) is True
        assert store.get(KEY_A) == {"cycles": 7}
        assert store.object_path(KEY_A).parent.name == "aa"
        assert store.stats["puts"] == 1 and store.stats["hits"] == 1

    def test_put_is_idempotent_and_never_rewrites(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"cycles": 7})
        before = store.object_path(KEY_A).read_bytes()
        assert store.put(KEY_A, {"cycles": 999}) is False
        assert store.object_path(KEY_A).read_bytes() == before
        assert store.stats["put_dedup"] == 1

    def test_invalid_keys_are_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "abc", "Z" * 64, "../" + "a" * 61):
            with pytest.raises(ResultStoreError):
                store.object_path(bad)

    def test_corrupt_object_is_quarantined_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"cycles": 7})
        store.object_path(KEY_A).write_text("{torn")
        assert store.get(KEY_A) is None
        assert store.stats["quarantined"] == 1
        assert not store.has(KEY_A)

    def test_publish_and_referenced_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"x": 1})
        store.put(KEY_B, {"x": 2})
        store.publish("alice", "sweep", {"l1": KEY_A}, digest="d1")
        store.publish("bob", "sweep", {"l1": KEY_A, "l2": KEY_B})
        assert store.tenants() == ["alice", "bob"]
        assert store.campaigns("alice") == ["sweep"]
        assert store.manifest("alice", "sweep")["digest"] == "d1"
        assert store.referenced_keys() == {KEY_A, KEY_B}

    def test_manifest_names_cannot_escape_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        for tenant in ("", "..", "a/b", ".hidden"):
            with pytest.raises(ResultStoreError):
                store.publish(tenant, "c", {})
        with pytest.raises(ResultStoreError):
            store.publish("ok", "../escape", {})

    def test_gc_keeps_referenced_objects_only(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"x": 1})
        store.put(KEY_B, {"x": 2})
        store.publish("alice", "sweep", {"l1": KEY_A})
        (tmp_path / "objects" / "zz.json.tmp.1").parent.mkdir(
            parents=True, exist_ok=True
        )
        (tmp_path / "objects" / "zz.json.tmp.1").write_text("junk")
        removed = store.gc()
        assert removed == 2  # KEY_B + the tmp debris
        assert store.has(KEY_A) and not store.has(KEY_B)

    def test_describe_shape(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"x": 1})
        description = store.describe()
        assert description["objects"] == 1
        assert set(description["stats"]) >= {"hits", "misses", "puts"}


# ----------------------------------------------------- coordinator RPC


class _CoordinatorHarness:
    """Run a Coordinator on a background event loop so blocking
    ``RpcClient`` calls can drive it synchronously from the test."""

    def __init__(self, campaign, **kwargs):
        self.coordinator = Coordinator(campaign, **kwargs)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self._thread.start()
        self.host, self.port = asyncio.run_coroutine_threadsafe(
            self.coordinator.start(), self.loop
        ).result(timeout=10)

    def close(self):
        asyncio.run_coroutine_threadsafe(
            self.coordinator.stop(), self.loop
        ).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)
        self.loop.close()


@pytest.fixture
def harness(tmp_path):
    campaign = Campaign.create(tmp_path / "camp", _spec())
    instance = _CoordinatorHarness(
        campaign,
        executor=_executor(tmp_path),
        runner="sleep",
        expected_workers=1,
        retry=RetryPolicy(max_attempts=2, unit=0.0),
    )
    yield instance
    instance.close()


def _client(harness):
    return RpcClient(harness.host, harness.port, timeout=5.0)


def _serve(client, name="t"):
    return client.call(
        "serve", worker=name, pid=os.getpid(), protocol=PROTOCOL_VERSION
    )


class TestCoordinatorRpc:
    def test_serve_handshake(self, harness):
        with _client(harness) as client:
            hello = _serve(client)
        assert hello["worker_id"] == "w0"
        assert hello["campaign"] == "dist"
        assert hello["runner"] == {"mode": "sleep", "seconds": 0.0}

    def test_protocol_version_mismatch_is_rejected(self, harness):
        with _client(harness) as client:
            with pytest.raises(RpcError) as excinfo:
                client.call("serve", protocol=PROTOCOL_VERSION + 1)
        assert excinfo.value.code == ERR_BAD_REQUEST

    def test_unknown_method_is_404(self, harness):
        with _client(harness) as client:
            with pytest.raises(RpcError) as excinfo:
                client.call("frobnicate")
        assert excinfo.value.code == ERR_UNKNOWN_METHOD

    def test_unregistered_worker_cannot_lease(self, harness):
        with _client(harness) as client:
            with pytest.raises(RpcError) as excinfo:
                client.call("lease", worker_id="nope")
        assert excinfo.value.code == ERR_BAD_REQUEST

    def test_lease_steal_result_drains_the_campaign(self, harness):
        with _client(harness) as client:
            worker = _serve(client)["worker_id"]
            client.call("submit", worker_id=worker)
            # Own shard first, then a steal from the foreign shard: 2 runs
            # over 2 shards with 1 worker means exactly one steal.
            first = client.call("lease", worker_id=worker)
            assert first["kind"] == "run" and first["stolen"] is False
            client.call(
                "result", worker_id=worker, key=first["key"],
                payload={"mode": "sleep", "key": first["key"]},
            )
            assert client.call("lease", worker_id=worker)["kind"] == "empty"
            second = client.call("steal", worker_id=worker)
            assert second["kind"] == "run" and second["stolen"] is True
            reply = client.call(
                "result", worker_id=worker, key=second["key"],
                payload={"mode": "sleep", "key": second["key"]},
            )
            assert reply == {"accepted": True, "done": True}
            status = client.call("status", worker_id=worker)
        assert status["done"] is True
        assert status["digest"]
        assert sum(s["stolen"] for s in status["shards"]) == 1

    def test_lease_cap_throttles_greedy_workers(self, harness):
        with _client(harness) as client:
            worker = _serve(client)["worker_id"]
            client.call("submit", worker_id=worker)
            grant = client.call("lease", worker_id=worker)
            assert grant["kind"] == "run"
            with pytest.raises(RpcError) as excinfo:
                client.call("lease", worker_id=worker)
        assert excinfo.value.code == ERR_THROTTLED

    def test_duplicate_result_is_idempotent(self, harness):
        with _client(harness) as client:
            worker = _serve(client)["worker_id"]
            client.call("submit", worker_id=worker)
            grant = client.call("lease", worker_id=worker)
            payload = {"mode": "sleep", "key": grant["key"]}
            first = client.call(
                "result", worker_id=worker, key=grant["key"], payload=payload
            )
            second = client.call(
                "result", worker_id=worker, key=grant["key"], payload=payload
            )
        assert first["accepted"] is True
        assert second["accepted"] is False

    def test_fail_requeues_then_gives_up(self, harness):
        with _client(harness) as client:
            worker = _serve(client)["worker_id"]
            client.call("submit", worker_id=worker)
            grant = client.call("lease", worker_id=worker)
            reply = client.call(
                "fail", worker_id=worker, key=grant["key"], detail="boom"
            )
            assert reply == {"requeued": True, "giveup": False}
            # max_attempts=2, unit=0: the retry is immediately leasable.
            # Steal prefers foreign shards, so drain the other queued run
            # first if it is granted ahead of the retried one.
            deadline = time.monotonic() + 5.0
            while True:
                again = client.call("steal", worker_id=worker)
                if again["kind"] == "run":
                    if again["key"] == grant["key"]:
                        break
                    client.call(
                        "result", worker_id=worker, key=again["key"],
                        payload={"mode": "sleep", "key": again["key"]},
                    )
                    continue
                assert time.monotonic() < deadline, "retry never re-leased"
                time.sleep(0.05)
            assert again["attempt"] == 2
            reply = client.call(
                "fail", worker_id=worker, key=grant["key"], detail="boom"
            )
            assert reply == {"requeued": False, "giveup": True}
            status = client.call("status", worker_id=worker)
        assert status["failed"] == 1
        counters = harness.coordinator.telemetry.counters
        assert counters["requeues.total"] == 1
        assert counters["giveups.total"] == 1

    def test_submit_is_rate_limited(self, tmp_path):
        campaign = Campaign.create(tmp_path / "camp", _spec())
        harness = _CoordinatorHarness(
            campaign,
            executor=_executor(tmp_path),
            runner="sleep",
            submit_rate=0.001,  # refills a token every ~17 minutes
            submit_burst=1.0,
        )
        try:
            with RpcClient(harness.host, harness.port, timeout=5.0) as client:
                client.call("submit")
                with pytest.raises(RpcError) as excinfo:
                    client.call("submit")
            assert excinfo.value.code == ERR_THROTTLED
            counters = harness.coordinator.telemetry.counters
            assert counters["submits.throttled"] == 1
        finally:
            harness.close()

    def test_submit_respects_the_queue_high_water_mark(self, tmp_path):
        campaign = Campaign.create(tmp_path / "camp", _spec())
        harness = _CoordinatorHarness(
            campaign,
            executor=_executor(tmp_path),
            runner="sleep",
            max_queue=1,
        )
        try:
            with RpcClient(harness.host, harness.port, timeout=5.0) as client:
                client.call("submit")  # queues 2 runs: now over high water
                with pytest.raises(RpcError) as excinfo:
                    client.call("submit")
            assert excinfo.value.code == ERR_THROTTLED
        finally:
            harness.close()

    def test_submit_rejects_keys_outside_the_plan(self, harness):
        with _client(harness) as client:
            with pytest.raises(RpcError) as excinfo:
                client.call("submit", keys=[KEY_A])
        assert excinfo.value.code == ERR_BAD_REQUEST

    def test_live_status_helpers(self, harness, tmp_path):
        assert coordinator_endpoint(tmp_path / "camp") == (
            harness.host, harness.port,
        )
        status = live_status(harness.host, harness.port)
        text = render_live_status(status)
        assert "campaign dist [live, running]" in text
        assert "shard 0" in text

    def test_rejects_unknown_runner_mode(self, tmp_path):
        campaign = Campaign.create(tmp_path / "camp", _spec())
        with pytest.raises(DistributedError):
            Coordinator(campaign, runner="teleport")


# ------------------------------------------------------------- end to end


class TestDistributedEndToEnd:
    def test_digest_matches_single_box_byte_for_byte(self, tmp_path):
        spec = _spec()
        single = run_campaign(
            tmp_path / "single", spec,
            supervisor=WorkerSupervisor(
                workers=1, retry=RetryPolicy(max_attempts=2, unit=0.0)
            ),
            executor=_executor(tmp_path, "cache-single"),
        )
        telemetry = CampaignTelemetry()
        report = run_distributed(
            tmp_path / "dist", spec,
            workers=2,
            executor=_executor(tmp_path, "cache-dist"),
            timeout=120,
            telemetry=telemetry,
        )
        assert report.ok and report.completed == single.completed
        assert report.digest == single.digest
        single_bytes = (tmp_path / "single" / "results.json").read_bytes()
        dist_bytes = (tmp_path / "dist" / "results.json").read_bytes()
        assert dist_bytes == single_bytes
        assert (tmp_path / "dist" / "digest.txt").read_bytes() == (
            tmp_path / "single" / "digest.txt"
        ).read_bytes()
        # Distributed bookkeeping happened: shard journals, worker joins,
        # no crash-unsafe debris, endpoint withdrawn after completion.
        assert list((tmp_path / "dist").glob("journal-shard*.jsonl"))
        assert telemetry.counters["workers.joined"] >= 1
        assert list(iter_stale_tmp(tmp_path / "dist")) == []
        assert not (tmp_path / "dist" / COORDINATOR_NAME).exists()

        # A plain single-box resume reads the merged shard journals and
        # agrees the campaign is already finished (nothing re-executes).
        resumed = run_campaign(
            tmp_path / "dist", None,
            supervisor=WorkerSupervisor(workers=1),
            executor=_executor(tmp_path, "cache-resume"),
        )
        assert resumed.digest == single.digest
        assert (tmp_path / "dist" / "results.json").read_bytes() == single_bytes

    def test_sleep_runner_is_worker_count_invariant_and_cache_isolated(
        self, tmp_path
    ):
        digests = []
        executor = _executor(tmp_path)
        for workers in (1, 2):
            telemetry = CampaignTelemetry()
            report = run_distributed(
                tmp_path / f"w{workers}", _spec(),
                workers=workers,
                executor=executor,
                runner="sleep",
                timeout=60,
                telemetry=telemetry,
            )
            assert report.ok
            digests.append(report.digest)
            # Sleep-mode payloads must never touch the sim result cache
            # (poisoning) nor complete from it (masquerading).
            assert telemetry.counters["runs.cache_hits"] == 0
        assert digests[0] == digests[1]
        assert list((tmp_path / "cache").glob("*.json")) == []

    def test_store_dedupe_across_tenants(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = _spec()
        first = run_distributed(
            tmp_path / "alice", spec,
            workers=1,
            executor=_executor(tmp_path, "cache-alice"),
            store=store,
            tenant="alice",
            timeout=120,
        )
        assert first.ok and first.store_hits == 0
        assert store.manifest("alice", "dist")["digest"] == first.digest

        # Same matrix, different tenant, cold private cache: completes
        # entirely from the objects plane — no worker ever runs.
        second = run_distributed(
            tmp_path / "bob", spec,
            workers=1,
            executor=_executor(tmp_path, "cache-bob"),
            store=store,
            tenant="bob",
            timeout=120,
        )
        assert second.ok
        assert second.store_hits == second.completed == first.completed
        assert second.digest == first.digest
        assert store.tenants() == ["alice", "bob"]
        assert len(store) == first.completed
        # Both manifests pin every object: gc removes nothing.
        assert store.gc() == 0

    def test_chaos_worker_kill_recovers_and_digest_holds(self, tmp_path):
        # 4 runs over 2 workers: whenever a result lands, the other worker
        # almost surely holds a lease, so the chaos trigger finds a victim.
        spec = _spec("chaos", apps=(APP, "fft"))
        reference = run_campaign(
            tmp_path / "reference", spec,
            supervisor=WorkerSupervisor(workers=1),
            executor=_executor(tmp_path, "cache-ref"),
        )
        telemetry = CampaignTelemetry()
        report = run_distributed(
            tmp_path / "chaos", spec,
            workers=2,
            executor=_executor(tmp_path, "cache-chaos"),
            retry=RetryPolicy(max_attempts=3, unit=0.0),
            chaos_kill_after=1,
            timeout=120,
            telemetry=telemetry,
        )
        assert report.ok
        assert report.digest == reference.digest
        assert telemetry.counters["workers.lost"] >= 1
        assert list(iter_stale_tmp(tmp_path / "chaos")) == []

    def test_trace_sharded_campaign_digest_matches_single_box(self, tmp_path):
        """One recorded trace fanned across workers by chunk window.

        A ``kind="trace"`` campaign cuts the trace into barrier-safe
        windows (one run per window per protocol); the distributed fleet
        must land byte-for-byte on the single-box digest, and every
        window row must be a genuine shard (cold windowed replay, keyed
        by the trace's content digest).
        """
        from repro.traces import record_app_trace

        trace = tmp_path / "radix.wtr"
        info = record_app_trace(
            trace, APP, CORES, MEMOPS, trace_seed=3, chunk_records=16
        )
        spec = CampaignSpec(
            name="trace-dist",
            kind="trace",
            protocols=("baseline", "widir"),
            trace_path=str(trace),
            trace_shards=3,
        )
        single = run_campaign(
            tmp_path / "single", spec,
            supervisor=WorkerSupervisor(workers=1),
            executor=_executor(tmp_path, "cache-single-trace"),
        )
        campaign = Campaign.load(tmp_path / "single")
        assert any("shard" in label for label in campaign.labels)
        sharded = [r for r in campaign.plan.requests if r.trace_window is not None]
        assert len(sharded) == len(campaign.plan.requests) >= 4
        assert all(r.trace_id == info["trace_id"] for r in sharded)

        report = run_distributed(
            tmp_path / "dist", spec,
            workers=2,
            executor=_executor(tmp_path, "cache-dist-trace"),
            timeout=120,
        )
        assert report.ok and report.completed == single.completed
        assert report.digest == single.digest
        assert (tmp_path / "dist" / "results.json").read_bytes() == (
            tmp_path / "single" / "results.json"
        ).read_bytes()
