"""Unit and property tests for the deterministic RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(123)
        b = DeterministicRng(123)
        assert [a.next_u64() for _ in range(50)] == [b.next_u64() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.next_u64() for _ in range(8)] != [b.next_u64() for _ in range(8)]

    def test_split_is_stable_and_independent(self):
        parent = DeterministicRng(42)
        child1 = parent.split("cache-0")
        # Splitting again with the same label yields the same stream.
        child2 = DeterministicRng(42).split("cache-0")
        assert [child1.next_u64() for _ in range(10)] == [
            child2.next_u64() for _ in range(10)
        ]

    def test_split_does_not_advance_parent(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        a.split("x")
        a.split("y")
        assert a.next_u64() == b.next_u64()

    def test_distinct_labels_distinct_streams(self):
        parent = DeterministicRng(9)
        s1 = parent.split("alpha")
        s2 = parent.split("beta")
        assert [s1.next_u64() for _ in range(8)] != [s2.next_u64() for _ in range(8)]


class TestDistributionContracts:
    @given(st.integers(0, 2**32), st.integers(-100, 100), st.integers(0, 200))
    def test_randint_in_range(self, seed, low, span):
        rng = DeterministicRng(seed)
        high = low + span
        for _ in range(20):
            value = rng.randint(low, high)
            assert low <= value <= high

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).randint(5, 4)

    @given(st.integers(0, 2**32))
    def test_random_unit_interval(self, seed):
        rng = DeterministicRng(seed)
        for _ in range(50):
            x = rng.random()
            assert 0.0 <= x < 1.0

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).choice([])

    @given(st.lists(st.integers(), min_size=1, max_size=20), st.integers(0, 2**16))
    def test_choice_returns_member(self, items, seed):
        rng = DeterministicRng(seed)
        assert rng.choice(items) in items

    @given(st.lists(st.integers(), max_size=30), st.integers(0, 2**16))
    def test_shuffle_is_permutation(self, items, seed):
        rng = DeterministicRng(seed)
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == sorted(items)

    @given(st.floats(min_value=0.5, max_value=100.0), st.integers(0, 2**16))
    def test_geometric_at_least_one(self, mean, seed):
        rng = DeterministicRng(seed)
        for _ in range(20):
            assert rng.geometric(mean) >= 1

    def test_geometric_mean_approximates_target(self):
        rng = DeterministicRng(1234)
        samples = [rng.geometric(10.0) for _ in range(20000)]
        mean = sum(samples) / len(samples)
        assert 9.0 < mean < 11.0

    def test_randint_covers_range_uniformly_enough(self):
        rng = DeterministicRng(5)
        counts = {}
        for _ in range(6000):
            counts[rng.randint(0, 5)] = counts.get(rng.randint(0, 5), 0) + 1
        assert set(counts) == set(range(6))
