"""Replay identity, snapshot/resume, and sharding contracts.

Three locks, in increasing strength:

1. **Live ≡ replay** — recording an application's reference stream and
   replaying it continuously produces a result digest byte-identical to
   a live ``run_app`` of the same (app, cores, memops, seed), under both
   kernels and every registered protocol backend. The digests are
   additionally pinned as goldens, so the *recorded stream itself*
   cannot drift without a diff here.

2. **Snapshot/resume ≡ uninterrupted** — segmented replay is a pure
   function of (trace, config, interval); killing the process after any
   durable snapshot (simulated in-process, and with a real ``SIGKILL``
   in a subprocess) and resuming yields the same final digest as the
   never-interrupted segmented run.

3. **Window merge** — a trace cut into barrier-safe windows, replayed
   cold and merged, is deterministic and order-invariant; a single
   window spanning the whole trace is digest-identical to continuous
   replay.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.coherence.backend import backend_names
from repro.config.presets import protocol_config
from repro.engine.batch import batched_default, set_batched_default
from repro.harness.executor import Executor, ExperimentPlan, RunRequest, run_key
from repro.harness.runner import run_app
from repro.traces import (
    TraceFormatError,
    TraceReader,
    merge_window_results,
    plan_windows,
    record_app_trace,
    replay_trace,
    replay_window,
    result_digest,
)

APP = "radix"
CORES = 8
MEMOPS = 300
TRACE_SEED = 3
SEED = 42
CHUNK_RECORDS = 64

#: Continuous-replay digests per backend, equal to the live ``run_app``
#: digest of the same workload by construction (asserted below) and
#: identical under both kernels. Regenerate deliberately with
#: ``python -m tests.test_traces_replay`` after an intentional protocol
#: or generator change; an unexplained diff means the recorded stream or
#: the replay path drifted from the live machine.
GOLDEN_REPLAY_DIGESTS = {
    "baseline": "957c62a1c6749ee2959762682d33faea3988afdb58468958cf60df575ad86228",
    "hybrid_update": "45b11df862d44ce949b38de4efc54b75654d2b55e8e615d7bcd591e8bb8702f1",
    "phase_priority": "33fcc214d72e1aa245aadd44776157f021e11027265f85a990885358fe0f7529",
    "widir": "9fc7f1e9380f4e6ad8d4b9bd9c8d0e87d6c392900a6da3b35edd46a3f8a9d867",
}


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "radix.wtr"
    record_app_trace(
        path, APP, CORES, MEMOPS, trace_seed=TRACE_SEED, chunk_records=CHUNK_RECORDS
    )
    return path


def _config(protocol: str):
    return protocol_config(protocol, num_cores=CORES, seed=SEED)


def _both_kernels(fn):
    """Run ``fn()`` under the event kernel and the batched kernel."""
    outputs = []
    original = batched_default()
    try:
        for batched in (False, True):
            set_batched_default(batched)
            outputs.append(fn())
    finally:
        set_batched_default(original)
    return outputs


# ------------------------------------------------- live ≡ replay goldens


@pytest.mark.parametrize("protocol", backend_names())
def test_replay_matches_live_run(trace_path, protocol):
    config = _config(protocol)

    def once():
        live = run_app(APP, config, MEMOPS, TRACE_SEED)
        replayed = replay_trace(trace_path, config)
        return result_digest(live), result_digest(replayed)

    for live_digest, replay_digest in _both_kernels(once):
        assert replay_digest == live_digest
        assert replay_digest == GOLDEN_REPLAY_DIGESTS[protocol]


def test_replay_rejects_core_count_mismatch(trace_path):
    with pytest.raises(TraceFormatError):
        replay_trace(trace_path, protocol_config("widir", num_cores=4, seed=SEED))


def test_replay_rejects_wrong_trace_id(trace_path):
    with pytest.raises(TraceFormatError):
        replay_trace(trace_path, _config("widir"), expect_trace_id="0" * 16)


# --------------------------------------------------- snapshot and resume


def test_segmented_replay_is_deterministic_and_kernel_invariant(trace_path):
    config = _config("widir")
    digests = _both_kernels(
        lambda: result_digest(replay_trace(trace_path, config, snapshot_every=2))
    )
    assert digests[0] == digests[1]
    again = result_digest(replay_trace(trace_path, config, snapshot_every=2))
    assert again == digests[0]


def test_resume_from_durable_snapshot_matches_uninterrupted(
    trace_path, tmp_path, monkeypatch
):
    """In-process kill: die right after persisting a snapshot, resume."""
    import repro.traces.replay as replay_mod

    config = _config("widir")
    uninterrupted = result_digest(
        replay_trace(trace_path, config, snapshot_every=2)
    )

    snap = tmp_path / "resume.snap"

    class Killed(BaseException):
        pass

    original = replay_mod.save_snapshot

    def save_then_die(path, snapshot):
        original(path, snapshot)
        if snapshot["progress"]["segment"] >= 2:
            raise Killed()

    monkeypatch.setattr(replay_mod, "save_snapshot", save_then_die)
    with pytest.raises(Killed):
        replay_trace(trace_path, config, snapshot_every=2, snapshot_path=snap)
    monkeypatch.setattr(replay_mod, "save_snapshot", original)

    assert snap.exists()
    resumed = replay_trace(
        trace_path, config, snapshot_every=2, snapshot_path=snap
    )
    assert result_digest(resumed) == uninterrupted
    assert not snap.exists()  # completed runs clean up their snapshot


def test_snapshot_rejects_mismatched_trace_or_interval(
    trace_path, tmp_path, monkeypatch
):
    import repro.traces.replay as replay_mod

    config = _config("widir")
    snap = tmp_path / "stale.snap"

    class Killed(BaseException):
        pass

    original = replay_mod.save_snapshot

    def save_then_die(path, snapshot):
        original(path, snapshot)
        raise Killed()

    monkeypatch.setattr(replay_mod, "save_snapshot", save_then_die)
    with pytest.raises(Killed):
        replay_trace(trace_path, config, snapshot_every=2, snapshot_path=snap)
    monkeypatch.setattr(replay_mod, "save_snapshot", original)

    # Wrong interval: the snapshot encodes snapshot_every=2.
    with pytest.raises(TraceFormatError):
        replay_trace(trace_path, config, snapshot_every=3, snapshot_path=snap)
    # Wrong trace: re-record with a different seed at a new path.
    other = tmp_path / "other.wtr"
    record_app_trace(
        other, APP, CORES, MEMOPS, trace_seed=TRACE_SEED + 1,
        chunk_records=CHUNK_RECORDS,
    )
    with pytest.raises(TraceFormatError):
        replay_trace(other, config, snapshot_every=2, snapshot_path=snap)


_CHILD_SCRIPT = textwrap.dedent(
    """
    import os, signal, sys

    import repro.traces.replay as replay
    from repro.config.presets import protocol_config

    phase, trace, snap = sys.argv[1], sys.argv[2], sys.argv[3]
    config = protocol_config("widir", num_cores={cores}, seed={seed})

    if phase == "kill":
        original = replay.save_snapshot

        def save_then_kill(path, snapshot):
            original(path, snapshot)
            if snapshot["progress"]["segment"] >= 2:
                os.kill(os.getpid(), signal.SIGKILL)

        replay.save_snapshot = save_then_kill

    result = replay.replay_trace(
        trace, config, snapshot_every=2,
        snapshot_path=(None if phase == "full" else snap),
    )
    print(replay.result_digest(result))
    """
)


@pytest.mark.parametrize("batched", ["0", "1"])
def test_sigkill_resume_identity_subprocess(trace_path, tmp_path, batched):
    """Real SIGKILL mid-trace, then resume: digest equals uninterrupted."""
    script = _CHILD_SCRIPT.format(cores=CORES, seed=SEED)
    snap = tmp_path / "killed.snap"
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_BATCHED_KERNEL"] = batched

    def child(phase):
        return subprocess.run(
            [sys.executable, "-c", script, phase, str(trace_path), str(snap)],
            capture_output=True, text=True, env=env,
        )

    full = child("full")
    assert full.returncode == 0, full.stderr
    uninterrupted = full.stdout.strip()

    killed = child("kill")
    assert killed.returncode == -signal.SIGKILL
    assert snap.exists(), "no durable snapshot survived the SIGKILL"

    resumed = child("resume")
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout.strip() == uninterrupted
    assert not snap.exists()


# ------------------------------------------------------- window sharding


def test_full_window_equals_continuous_replay(trace_path):
    config = _config("widir")
    continuous = result_digest(replay_trace(trace_path, config))
    with TraceReader(trace_path) as reader:
        window = [(0, reader.num_chunks(core)) for core in range(CORES)]
    cold = replay_window(trace_path, config, window)
    assert result_digest(cold) == continuous


def test_window_merge_is_deterministic_and_order_invariant(trace_path):
    config = _config("widir")
    windows = plan_windows(trace_path, 2)
    assert len(windows) >= 2, "trace too small to shard — raise MEMOPS"
    with TraceReader(trace_path) as reader:
        chunks = [reader.num_chunks(core) for core in range(CORES)]
    # Windows tile the whole trace per core, contiguously.
    for core in range(CORES):
        spans = [tuple(window[core]) for window in windows]
        assert spans[0][0] == 0
        assert spans[-1][1] == chunks[core]
        for left, right in zip(spans, spans[1:]):
            assert left[1] == right[0]

    results = [replay_window(trace_path, config, w) for w in windows]
    merged = merge_window_results(results, config, app=APP)
    reversed_merge = merge_window_results(list(reversed(results)), config, app=APP)
    assert result_digest(merged) == result_digest(reversed_merge)
    # Recomputing any window reproduces its digest (cold start, no state).
    again = replay_window(trace_path, config, windows[0])
    assert result_digest(again) == result_digest(results[0])


def test_plan_windows_respects_max_windows(trace_path):
    windows = plan_windows(trace_path, 1, max_windows=2)
    assert 1 <= len(windows) <= 2


# ------------------------------------------- harness and API integration


def test_run_request_key_ignores_trace_path_but_pins_trace_id(trace_path):
    config = _config("widir")
    with TraceReader(trace_path) as reader:
        trace_id = reader.trace_id
    generator = RunRequest(APP, config, MEMOPS, TRACE_SEED)
    # Pre-trace cache-key shape is untouched for generator-driven runs.
    assert set(generator.canonical()) == {
        "schema", "app", "config", "memops", "trace_seed",
    }
    here = RunRequest(APP, config, 0, trace_path=str(trace_path), trace_id=trace_id)
    elsewhere = RunRequest(
        APP, config, 0, trace_path="/moved/copy.wtr", trace_id=trace_id
    )
    assert run_key(here) == run_key(elsewhere)
    rerecorded = RunRequest(
        APP, config, 0, trace_path=str(trace_path), trace_id="f" * 16
    )
    assert run_key(rerecorded) != run_key(here)
    windowed = RunRequest(
        APP, config, 0, trace_path=str(trace_path), trace_id=trace_id,
        trace_window=((0, 1),) * CORES,
    )
    assert run_key(windowed) != run_key(here)


def test_executor_replays_trace_requests(trace_path, tmp_path):
    config = _config("widir")
    plan = ExperimentPlan()
    index = plan.add_trace(trace_path, config)
    request = plan.requests[index]
    with TraceReader(trace_path) as reader:
        assert request.trace_id == reader.trace_id
        assert request.app == APP
    executor = Executor(workers=1, cache_dir=tmp_path / "cache", use_cache=True)
    (result,) = executor.map_runs(plan)
    assert result_digest(result) == result_digest(replay_trace(trace_path, config))
    # Second pass is served from the memo cache, not re-simulated.
    (cached,) = executor.map_runs(plan)
    assert result_digest(cached) == result_digest(result)
    assert executor.stats.cache_hits >= 1


def test_api_record_and_replay_roundtrip(tmp_path):
    from repro import api

    out = tmp_path / "api.wtr"
    info = api.record_trace(APP, out=out, cores=4, memops=120, trace_seed=1)
    assert isinstance(info, api.TraceFileInfo)
    assert info.num_cores == 4
    assert info.trace_id
    assert api.validate_trace(out).details["ok"] is True
    assert api.trace_info(out).trace_id == info.trace_id

    result = api.replay(out, protocol="widir", seed=SEED)
    direct = replay_trace(out, protocol_config("widir", num_cores=4, seed=SEED))
    assert result_digest(result) == result_digest(direct)


def _regenerate():  # pragma: no cover - maintenance entry point
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "radix.wtr"
        record_app_trace(
            path, APP, CORES, MEMOPS,
            trace_seed=TRACE_SEED, chunk_records=CHUNK_RECORDS,
        )
        for protocol in backend_names():
            digest = result_digest(replay_trace(path, _config(protocol)))
            print(f'    "{protocol}": "{digest}",')


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
