"""Cross-protocol differential harness for the pluggable backend API.

Every registered coherence-protocol backend executes the *same* seeded
memory-operation stream. The stream is built so its final memory image is
interleaving-independent — each variable has exactly one writer core, and
the shared counter only sees commutative fetch-and-increments — which
makes the image a cross-protocol oracle: four different state machines,
four different interleavings, one answer.

Per-backend golden digests additionally pin each protocol's exact timing
and observation history, so a semantic drift in any one backend (or a
kernel divergence — the batched and event kernels must be bit-identical)
shows up as a digest diff even when the final image stays right.

The pure transition helpers the rival backends are built from
(``pp_select``/``pp_next_phase``, ``hyb_should_enter``/``hyb_should_exit``
/``hyb_update_step``) get hypothesis property tests, and each new backend
gets a mutation smoke test proving the fuzz oracles catch a seeded bug in
*that backend's* machinery, shrunk to a replayable artifact.
"""

import hashlib
import json
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.backend import (
    ProtocolBackend,
    backend_names,
    get_backend,
    registered_backends,
)
from repro.coherence.hybrid_update import (
    hyb_should_enter,
    hyb_should_exit,
    hyb_update_step,
)
from repro.coherence.phase_priority import pp_next_phase, pp_select
from repro.config.system import SystemConfig
from repro.engine.rng import DeterministicRng
from repro.system import Manycore
from repro.verify.artifacts import FailureArtifact, shrink_trial
from repro.verify.fuzz import execute_trial, generate_trial
from repro.verify.litmus import suite_configs
from repro.verify.mutations import MUTATION_PROTOCOLS, MUTATIONS

NUM_CORES = 8
STREAM_SEED = 2024
OPS_PER_CORE = 40

#: Per-backend golden digests of the differential stream (cycles +
#: observation history + final image). Regenerate deliberately with
#: ``python -m tests.test_protocol_backends`` after an intentional
#: protocol change; an unexplained diff is a semantic regression. The
#: digests must be identical under both kernels (REPRO_BATCHED_KERNEL).
GOLDEN_DIGESTS = {
    "baseline": "fa44e1c3c3a53d56",
    "hybrid_update": "5ba7ab55780cec2e",
    "phase_priority": "fba140cd4ff06a7a",
    "widir": "e48b6fffe34d5e5f",
}


# ------------------------------------------------------ the seeded stream


def differential_stream(
    seed: int = STREAM_SEED,
    num_cores: int = NUM_CORES,
    ops_per_core: int = OPS_PER_CORE,
):
    """One program per core: single-writer stores, shared loads, RMWs.

    Variable ``i`` is stored only by core ``i`` (ascending values, so the
    final value is fixed by program order); every core loads every
    variable; all cores hammer one fetch-and-increment counter. Final
    memory state is therefore protocol-independent.
    """
    rng = DeterministicRng(seed).split("differential")
    programs = []
    for core in range(num_cores):
        ops = []
        version = 0
        for _ in range(ops_per_core):
            roll = rng.randint(0, 99)
            if roll < 35:
                version += 1
                ops.append(("store", core, core * 1000 + version))
            elif roll < 80:
                ops.append(("load", rng.randint(0, num_cores - 1), None))
            else:
                ops.append(("rmw", num_cores, None))
        programs.append(ops)
    return programs


def expected_final_image(programs, num_cores=NUM_CORES):
    image = {}
    rmws = 0
    for core, ops in enumerate(programs):
        for kind, var, value in ops:
            if kind == "store":
                image[var] = value
            elif kind == "rmw":
                rmws += 1
    image[num_cores] = rmws
    return image


def _machine_for(backend_name: str, num_cores: int = NUM_CORES) -> Manycore:
    config = SystemConfig(
        num_cores=num_cores,
        protocol=backend_name,
        seed=9,
        check_interval=200,  # the online invariant monitor rides along
    )
    if get_backend(backend_name).uses_sharer_threshold:
        # Force the many-sharer mode: full pointers keep the sharer
        # vector precise (hybrid mode entry requires it) and threshold 1
        # triggers on the first contended upgrade.
        config = replace(
            config,
            directory=replace(
                config.directory,
                num_pointers=num_cores,
                max_wired_sharers=1,
            ),
        )
    return Manycore(config)


def run_differential(backend_name: str):
    """Drive the stream through one backend; returns (digest, image)."""
    programs = differential_stream()
    machine = _machine_for(backend_name)
    line_bytes = machine.config.l1.line_bytes
    addresses = {var: (0x40 + var) * line_bytes for var in range(NUM_CORES + 1)}
    observations = [[] for _ in range(NUM_CORES)]
    finished = [False] * NUM_CORES

    def step(core: int, index: int) -> None:
        if index >= len(programs[core]):
            finished[core] = True
            return
        kind, var, value = programs[core][index]
        if kind == "load":

            def on_load(v, core=core, index=index):
                observations[core].append(v)
                step(core, index + 1)

            machine.caches[core].load(addresses[var], on_load)
        elif kind == "store":
            machine.caches[core].store(
                addresses[var], value, lambda core=core, index=index: step(core, index + 1)
            )
        else:

            def on_rmw(old, core=core, index=index):
                observations[core].append(old)
                step(core, index + 1)

            machine.caches[core].rmw(addresses[var], on_rmw)

    for core in range(NUM_CORES):
        step(core, 0)
    machine.run()

    assert all(finished), f"{backend_name}: unfinished cores (liveness)"
    machine.check_coherence(quiescent=True)  # SWMR + value agreement

    image = {}

    def read_back(var: int, index: int) -> None:
        if var > NUM_CORES:
            return

        def on_value(v, var=var):
            image[var] = v
            read_back(var + 1, 0)

        machine.caches[0].load(addresses[var], on_value)

    read_back(0, 0)
    machine.run()
    machine.check_coherence(quiescent=True)

    witness = {
        "backend": backend_name,
        "cycles": machine.sim.now,
        "observations": observations,
        "image": sorted(image.items()),
    }
    digest = hashlib.sha256(
        json.dumps(witness, sort_keys=True).encode()
    ).hexdigest()[:16]
    return digest, image


# ----------------------------------------------------- differential tests


def test_registry_has_all_four_backends():
    assert {"baseline", "widir", "phase_priority", "hybrid_update"} <= set(
        backend_names()
    )
    for backend in registered_backends():
        assert isinstance(backend, ProtocolBackend)
        assert backend.readable_states and backend.writable_states
        assert backend.writable_states <= backend.readable_states
        assert set(backend.directory_kind_ids())  # vocabulary is interned


def test_unknown_backend_raises_with_known_set():
    with pytest.raises(ValueError, match="baseline"):
        get_backend("definitely_not_a_protocol")


@pytest.mark.parametrize("name", backend_names())
def test_differential_stream_matches_golden_digest(name):
    digest, image = run_differential(name)
    assert image == expected_final_image(differential_stream())
    assert name in GOLDEN_DIGESTS, f"pin a golden digest for {name}"
    assert digest == GOLDEN_DIGESTS[name], (
        f"{name} digest drifted: {digest} != {GOLDEN_DIGESTS[name]} — "
        "a semantic change to this backend (or a kernel divergence)"
    )


def test_final_memory_images_identical_across_backends():
    images = {name: run_differential(name)[1] for name in backend_names()}
    reference_name = sorted(images)[0]
    reference = images[reference_name]
    for name, image in images.items():
        assert image == reference, (
            f"{name} final memory image diverges from {reference_name}"
        )


def test_litmus_matrix_covers_every_backend():
    protocols = {config.protocol for _, config in suite_configs(num_cores=8)}
    assert protocols == set(backend_names())


# ----------------------------------------- hypothesis: phase_priority fns


@given(st.integers(min_value=0, max_value=10**9))
def test_pp_next_phase_strictly_increases(phase):
    assert pp_next_phase(phase) == phase + 1


pp_entries = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=200, deadline=None)
@given(pp_entries)
def test_pp_select_returns_valid_index(entries):
    index = pp_select(entries)
    assert 0 <= index < len(entries)


@settings(max_examples=200, deadline=None)
@given(pp_entries)
def test_pp_select_notifications_preempt_requests(entries):
    index = pp_select(entries)
    non_requests = [i for i, (is_req, _, _) in enumerate(entries) if not is_req]
    if non_requests:
        assert index == non_requests[0]  # oldest notification first
    else:
        chosen = (entries[index][1], entries[index][2], index)
        for i, (_, phase, src) in enumerate(entries):
            assert chosen <= (phase, src, i)  # min (phase, src), FIFO ties


def test_pp_select_rejects_empty_queue():
    with pytest.raises(ValueError):
        pp_select([])


# ---------------------------------------- hypothesis: hybrid_update fns


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=0, max_value=64),
    st.booleans(),
    st.integers(min_value=1, max_value=64),
)
def test_hyb_should_enter_definition(num_targets, precise, threshold):
    expected = precise and num_targets + 1 > threshold
    assert hyb_should_enter(num_targets, precise, threshold) == expected
    # Monotone in the sharer count: more sharers never leaves the mode off
    # when fewer sharers would have turned it on.
    if hyb_should_enter(num_targets, precise, threshold):
        assert hyb_should_enter(num_targets + 1, precise, threshold)


@given(st.integers(min_value=0, max_value=64))
def test_hyb_should_exit_iff_one_or_fewer_sharers(count):
    assert hyb_should_exit(count) == (count <= 1)


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=1, max_value=100),
)
def test_hyb_update_step_counts_and_trips(count, threshold):
    new_count, tripped = hyb_update_step(count, threshold)
    assert new_count == count + 1
    assert tripped == (new_count >= threshold)
    # Once tripped, further updates stay tripped.
    if tripped:
        assert hyb_update_step(new_count, threshold)[1]


# ------------------------------------- mutation smoke: the new backends


def test_new_mutations_registered_with_applicability():
    for name in ("pp_drop_deferred", "hyb_lost_upd_ack", "hyb_stale_update"):
        assert name in MUTATIONS
        assert name in MUTATION_PROTOCOLS
    assert MUTATION_PROTOCOLS["pp_drop_deferred"] == ("phase_priority",)
    assert MUTATION_PROTOCOLS["hyb_lost_upd_ack"] == ("hybrid_update",)


def test_mutation_pp_drop_deferred_caught_and_replayable(tmp_path):
    """A leaked deferred message deadlocks phase_priority; the failure
    shrinks and replays from a serialized artifact."""
    spec = generate_trial(
        0, 3, num_cores=8, ops_per_core=30,
        protocol="phase_priority", check_interval=150,
    )
    spec.mutation = "pp_drop_deferred"
    spec.max_events = 150_000  # bounded: the deadlock shows up fast
    result = execute_trial(spec)
    assert not result.ok
    assert "max_events" in result.failure or "deadlock" in result.failure

    shrunk = shrink_trial(spec, max_checks=12)
    assert 0 < shrunk.total_ops <= spec.total_ops
    artifact = FailureArtifact(
        campaign="smoke", seed=0, trial_index=3, failure=result.failure,
        spec=shrunk, shrunk=True,
        original_ops=spec.total_ops, shrunk_ops=shrunk.total_ops,
    )
    loaded = FailureArtifact.load(artifact.save(tmp_path / "pp.json"))
    replay = execute_trial(loaded.spec)
    assert not replay.ok
    assert execute_trial(loaded.spec).failure == replay.failure


def test_mutation_hyb_stale_update_caught_and_replayable(tmp_path):
    """Skewed HybUpd values break value agreement; the failure shrinks
    and replays from a serialized artifact."""
    spec = generate_trial(
        0, 4, num_cores=8, ops_per_core=30,
        protocol="hybrid_update", check_interval=150,
    )
    spec.mutation = "hyb_stale_update"
    result = execute_trial(spec)
    assert not result.ok
    assert "divergent" in result.failure or "diverges" in result.failure

    shrunk = shrink_trial(spec, max_checks=40)
    assert 0 < shrunk.total_ops <= spec.total_ops
    artifact = FailureArtifact(
        campaign="smoke", seed=0, trial_index=4, failure=result.failure,
        spec=shrunk, shrunk=True,
        original_ops=spec.total_ops, shrunk_ops=shrunk.total_ops,
    )
    loaded = FailureArtifact.load(artifact.save(tmp_path / "hyb.json"))
    replay = execute_trial(loaded.spec)
    assert not replay.ok
    assert execute_trial(loaded.spec).failure == replay.failure


def test_mutation_hyb_lost_upd_ack_deadlocks():
    spec = generate_trial(
        0, 5, num_cores=8, ops_per_core=30,
        protocol="hybrid_update", check_interval=150,
        max_wired_sharers=1,
    )
    spec.mutation = "hyb_lost_upd_ack"
    spec.max_events = 150_000
    result = execute_trial(spec)
    assert not result.ok
    assert "max_events" in result.failure or "deadlock" in result.failure


if __name__ == "__main__":  # pragma: no cover - golden regeneration aid
    for _name in backend_names():
        print(f'    "{_name}": "{run_differential(_name)[0]}",')
