"""Property tests for the mesh network: total delivery and per-pair FIFO."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config.system import NocConfig
from repro.engine.simulator import Simulator
from repro.noc.mesh import MeshNetwork
from repro.noc.message import Message
from repro.noc.topology import MeshTopology

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MESSAGES = st.lists(
    st.tuples(
        st.integers(0, 200),            # injection cycle
        st.integers(0, 15),             # src
        st.integers(0, 15),             # dst
        st.booleans(),                  # carries data
        st.integers(0, 12),             # extra processing delay
    ),
    min_size=1,
    max_size=60,
)


def build(contention=True):
    sim = Simulator()
    network = MeshNetwork(
        sim, MeshTopology(16, 4), NocConfig(model_contention=contention),
        __import__("repro.stats.collectors", fromlist=["StatsRegistry"]).StatsRegistry(),
    )
    return sim, network


@SETTINGS
@given(messages=MESSAGES, contention=st.booleans())
def test_property_every_message_delivered_once(messages, contention):
    sim, network = build(contention)
    received = []
    for node in range(16):
        network.register_handler(
            node, lambda m, n=node: received.append((n, m.payload["tag"]))
        )
    for tag, (at, src, dst, data, delay) in enumerate(messages):
        kind = "Data" if data else "GetS"

        def inject(src=src, dst=dst, kind=kind, tag=tag, delay=delay):
            network.send(
                Message(kind, src, dst, 0x40, {"tag": tag, "data": {}}),
                extra_delay=delay,
            )

        sim.schedule_at(at, inject)
    sim.run(max_events=1_000_000)
    assert sorted(tag for _n, tag in received) == list(range(len(messages)))
    # Each message landed at its intended destination.
    for tag, (_at, _src, dst, _d, _delay) in enumerate(messages):
        assert (dst, tag) in received


@SETTINGS
@given(messages=MESSAGES)
def test_property_per_pair_fifo(messages):
    """Messages between the same (src, dst) pair arrive in send order, no
    matter what sizes and processing delays they mix."""
    sim, network = build(contention=True)
    arrivals = {}
    for node in range(16):
        network.register_handler(
            node,
            lambda m, n=node: arrivals.setdefault(
                (m.src, n), []
            ).append(m.payload["seq"]),
        )
    sequence_per_pair = {}
    # Inject in time order so "send order" is well defined per pair.
    for at, src, dst, data, delay in sorted(messages):
        pair = (src, dst)
        seq = sequence_per_pair.get(pair, 0)
        sequence_per_pair[pair] = seq + 1
        kind = "Data" if data else "GetS"

        def inject(src=src, dst=dst, kind=kind, seq=seq, delay=delay):
            network.send(
                Message(kind, src, dst, 0x40, {"seq": seq, "data": {}}),
                extra_delay=delay,
            )

        sim.schedule_at(at, inject)
    sim.run(max_events=1_000_000)
    for pair, seqs in arrivals.items():
        assert seqs == sorted(seqs), f"pair {pair} reordered: {seqs}"
