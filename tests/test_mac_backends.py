"""Cross-MAC differential harness for the pluggable wireless MAC API.

Every registered MAC backend drives the *same* seeded memory-operation
stream through the same WiDir machine (threshold forced to 1 so the
wireless path dominates). The stream's final memory image is
interleaving-independent — one writer per variable plus a commutative
RMW counter — so four different channel disciplines must converge on one
answer, while per-MAC golden digests pin each discipline's exact timing
and observation history (bit-identical under both simulation kernels).

Channel-error variants run the same stream with seeded frame corruption
and missed tones, proving every MAC's retransmit path under the same
oracles. The MAC structural invariants (token never collides, CSMA only
starts transmissions on slot boundaries, the FDMA partition is total)
get hypothesis property tests against a bare channel, and each MAC-scoped
mutation gets a smoke test proving the fuzz liveness oracle catches it.
"""

import hashlib
import json
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config.system import ChannelErrorConfig, SystemConfig, WirelessConfig
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.stats.collectors import StatsRegistry
from repro.system import Manycore
from repro.verify.artifacts import FailureArtifact, shrink_trial
from repro.verify.fuzz import execute_trial, generate_trial
from repro.verify.litmus import suite_configs
from repro.verify.mutations import (
    MUTATION_MACS,
    MUTATION_PROTOCOLS,
    MUTATIONS,
)
from repro.wireless.channel import WirelessDataChannel
from repro.wireless.frames import WirelessFrame
from repro.wireless.mac import (
    DEFAULT_MAC,
    MacBackend,
    get_mac,
    mac_names,
    registered_macs,
)
from repro.wireless.mac_fdma import FdmaMacState

NUM_CORES = 8
STREAM_SEED = 4021
OPS_PER_CORE = 40

#: Per-MAC golden digests of the differential stream (cycles + observation
#: history + final image), plus ``<mac>+err`` variants with the seeded
#: channel-error model on. Regenerate deliberately with
#: ``python -m tests.test_mac_backends`` after an intentional MAC change;
#: an unexplained diff is a semantic regression. The digests must be
#: identical under both kernels (REPRO_BATCHED_KERNEL).
GOLDEN_MAC_DIGESTS = {
    "brs": "98f33512bec98f78",
    "csma_slotted": "ffce035d8e91edcf",
    "fdma": "ff5e78ea0b793dd4",
    "token": "1fd9d97e5834cb36",
    "brs+err": "c277dcd6a6028991",
    "csma_slotted+err": "d3a04597c6d30378",
    "fdma+err": "19e353dad3c87f56",
    "token+err": "6a1fbd6b160a0f44",
}

#: Seeded error model for the ``+err`` variants: aggressive enough that
#: the bounded stream always exercises both retransmit paths.
ERRORS = ChannelErrorConfig(frame_corruption_prob=0.15, missed_tone_prob=0.15)


# ------------------------------------------------------ the seeded stream


def differential_stream(
    seed: int = STREAM_SEED,
    num_cores: int = NUM_CORES,
    ops_per_core: int = OPS_PER_CORE,
):
    """One program per core: single-writer stores, shared loads, RMWs."""
    rng = DeterministicRng(seed).split("mac-differential")
    programs = []
    for core in range(num_cores):
        ops = []
        version = 0
        for _ in range(ops_per_core):
            roll = rng.randint(0, 99)
            if roll < 35:
                version += 1
                ops.append(("store", core, core * 1000 + version))
            elif roll < 80:
                ops.append(("load", rng.randint(0, num_cores - 1), None))
            else:
                ops.append(("rmw", num_cores, None))
        programs.append(ops)
    return programs


def expected_final_image(programs, num_cores=NUM_CORES):
    image = {}
    rmws = 0
    for core, ops in enumerate(programs):
        for kind, var, value in ops:
            if kind == "store":
                image[var] = value
            elif kind == "rmw":
                rmws += 1
    image[num_cores] = rmws
    return image


def _machine_for(mac: str, errors: bool, num_cores: int = NUM_CORES) -> Manycore:
    config = SystemConfig(
        num_cores=num_cores,
        protocol="widir",
        seed=9,
        check_interval=200,  # the online invariant monitor rides along
        mac=mac,
    )
    # Threshold 1 with full pointers: every contended line goes wireless,
    # so the MAC under test carries the bulk of the traffic.
    config = replace(
        config,
        directory=replace(
            config.directory, num_pointers=num_cores, max_wired_sharers=1
        ),
    )
    if errors:
        config = replace(config, channel_errors=ERRORS)
    return Manycore(config)


def run_mac_differential(mac: str, errors: bool = False):
    """Drive the stream through one MAC; returns (digest, image, machine)."""
    programs = differential_stream()
    machine = _machine_for(mac, errors)
    line_bytes = machine.config.l1.line_bytes
    addresses = {var: (0x40 + var) * line_bytes for var in range(NUM_CORES + 1)}
    observations = [[] for _ in range(NUM_CORES)]
    finished = [False] * NUM_CORES

    def step(core: int, index: int) -> None:
        if index >= len(programs[core]):
            finished[core] = True
            return
        kind, var, value = programs[core][index]
        if kind == "load":

            def on_load(v, core=core, index=index):
                observations[core].append(v)
                step(core, index + 1)

            machine.caches[core].load(addresses[var], on_load)
        elif kind == "store":
            machine.caches[core].store(
                addresses[var],
                value,
                lambda core=core, index=index: step(core, index + 1),
            )
        else:

            def on_rmw(old, core=core, index=index):
                observations[core].append(old)
                step(core, index + 1)

            machine.caches[core].rmw(addresses[var], on_rmw)

    for core in range(NUM_CORES):
        step(core, 0)
    machine.run()

    assert all(finished), f"{mac}: unfinished cores (liveness)"
    machine.check_coherence(quiescent=True)  # SWMR + value agreement

    image = {}

    def read_back(var: int) -> None:
        if var > NUM_CORES:
            return

        def on_value(v, var=var):
            image[var] = v
            read_back(var + 1)

        machine.caches[0].load(addresses[var], on_value)

    read_back(0)
    machine.run()
    machine.check_coherence(quiescent=True)

    witness = {
        "mac": mac,
        "errors": errors,
        "cycles": machine.sim.now,
        "observations": observations,
        "image": sorted(image.items()),
    }
    digest = hashlib.sha256(
        json.dumps(witness, sort_keys=True).encode()
    ).hexdigest()[:16]
    return digest, image, machine


def _counter(machine: Manycore, name: str) -> int:
    return machine.stats.counter(name).value


# --------------------------------------------------------------- registry


def test_registry_has_all_four_macs():
    assert set(mac_names()) >= {"brs", "csma_slotted", "fdma", "token"}
    assert DEFAULT_MAC == "brs"
    for backend in registered_macs():
        assert isinstance(backend, MacBackend)
        assert backend.description
    assert get_mac("token").collision_free
    assert get_mac("fdma").collision_free and get_mac("fdma").multi_channel
    assert get_mac("brs").uses_backoff and not get_mac("brs").collision_free
    assert get_mac("csma_slotted").uses_backoff


def test_unknown_mac_raises_with_known_set():
    with pytest.raises(ValueError, match="brs"):
        get_mac("definitely_not_a_mac")


def test_litmus_matrix_covers_every_mac():
    labels = {label for label, _ in suite_configs(num_cores=8)}
    for mac in mac_names():
        if mac == DEFAULT_MAC:
            continue
        assert f"widir-{mac}" in labels
        assert f"widir-mws1-{mac}" in labels
    assert "widir-chanerr" in labels
    macs = {config.mac for _, config in suite_configs(num_cores=8)}
    assert macs == set(mac_names())


# ----------------------------------------------------- differential tests


@pytest.mark.parametrize("mac", mac_names())
def test_differential_stream_matches_golden_digest(mac):
    digest, image, machine = run_mac_differential(mac)
    assert image == expected_final_image(differential_stream())
    if get_mac(mac).collision_free:
        assert _counter(machine, "wnoc.collisions") == 0, (
            f"{mac} claims collision_free but collided"
        )
    assert mac in GOLDEN_MAC_DIGESTS, f"pin a golden digest for {mac}"
    assert digest == GOLDEN_MAC_DIGESTS[mac], (
        f"{mac} digest drifted: {digest} != {GOLDEN_MAC_DIGESTS[mac]} — "
        "a semantic change to this MAC (or a kernel divergence)"
    )


@pytest.mark.parametrize("mac", mac_names())
def test_differential_stream_with_channel_errors(mac):
    digest, image, machine = run_mac_differential(mac, errors=True)
    assert image == expected_final_image(differential_stream())
    # The error model actually fired: the stream is long enough that both
    # injection paths trigger at these probabilities.
    assert _counter(machine, "wnoc.corrupted") > 0
    assert _counter(machine, "tone.missed") > 0
    key = f"{mac}+err"
    assert digest == GOLDEN_MAC_DIGESTS[key], (
        f"{key} digest drifted: {digest} != {GOLDEN_MAC_DIGESTS[key]}"
    )


def test_final_memory_images_identical_across_macs():
    images = {mac: run_mac_differential(mac)[1] for mac in mac_names()}
    reference = images[DEFAULT_MAC]
    for mac, image in images.items():
        assert image == reference, (
            f"{mac} final memory image diverges from {DEFAULT_MAC}"
        )


# ------------------------------------------------- bare-channel harness


def _bare_channel(
    mac: str, num_nodes: int = 8, **overrides
) -> WirelessDataChannel:
    config = WirelessConfig(**overrides)
    channel = WirelessDataChannel(
        Simulator(),
        config,
        num_nodes,
        StatsRegistry(),
        DeterministicRng(1234).split("bare-channel"),
        mac=get_mac(mac),
    )
    for node in range(num_nodes):
        channel.register_receiver(node, lambda frame: None)
    return channel


def _blast(channel: WirelessDataChannel, sends):
    """Queue (time, node) transmissions; returns delivery count."""
    delivered = []
    for at, node in sends:
        def queue(node=node):
            frame = WirelessFrame("WirUpd", node, 0x40 + node)
            channel.transmit(frame, on_delivered=lambda: delivered.append(1))

        channel.sim.schedule_at(at, queue)
    channel.sim.run()
    return len(delivered)


SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

sends_strategy = st.lists(
    st.tuples(st.integers(0, 60), st.integers(0, 7)),
    min_size=1,
    max_size=16,
)


@SETTINGS
@given(sends=sends_strategy)
def test_property_token_never_collides(sends):
    """Any burst pattern: the token MAC delivers everything with zero
    collisions and zero backoff draws (no policies exist to draw from)."""
    channel = _bare_channel("token")
    assert channel._backoff == ()
    assert _blast(channel, sends) == len(sends)
    assert channel.stats.counter("wnoc.collisions").value == 0


@SETTINGS
@given(sends=sends_strategy)
def test_property_fdma_never_collides_and_delivers_all(sends):
    channel = _bare_channel("fdma")
    assert _blast(channel, sends) == len(sends)
    assert channel.stats.counter("wnoc.collisions").value == 0


@SETTINGS
@given(sends=sends_strategy)
def test_property_csma_transmissions_start_on_slot_boundaries(sends):
    """Every granted transmission starts at a contention-slot boundary,
    for any arrival pattern (frame lengths are not slot multiples, so
    un-deferred arbitration would violate this immediately)."""
    channel = _bare_channel("csma_slotted")
    slot = (
        channel.config.preamble_cycles + channel.config.collision_detect_cycles
    )
    starts = []
    original_grant = channel.grant

    def recording_grant(request, now, start_delay, duration):
        starts.append(now + start_delay)
        original_grant(request, now, start_delay, duration)

    channel.grant = recording_grant
    assert _blast(channel, sends) == len(sends)
    assert starts, "no transmission was ever granted"
    assert all(start % slot == 0 for start in starts), starts


@SETTINGS
@given(
    lines=st.lists(st.integers(0, 2**24 - 1), min_size=1, max_size=64),
    k=st.integers(1, 8),
)
def test_property_fdma_partition_is_total(lines, k):
    """Every line lands on exactly one sub-channel in [0, k); per-channel
    counts always sum to the total (the partition loses nothing)."""
    channel = _bare_channel("fdma", fdma_channels=k)
    state = channel._mac
    assert isinstance(state, FdmaMacState)
    counts = [0] * k
    for line in lines:
        sub = state.subchannel(line)
        assert 0 <= sub < k
        assert state.subchannel(line) == sub  # static: same line, same sub
        counts[sub] += 1
    assert sum(counts) == len(lines)


@SETTINGS
@given(
    line=st.integers(0, 2**24 - 1),
    k=st.integers(1, 8),
)
def test_property_fdma_aligned_addresses_spread(line, k):
    """Line indices and line-aligned byte addresses (constant low bits)
    must map consistently — the fold keeps high bits relevant."""
    channel = _bare_channel("fdma", fdma_channels=k)
    state = channel._mac
    sub = state.subchannel(line)
    assert 0 <= sub < k


# ------------------------------------------- mutation smoke: the MAC zoo


def test_mac_mutations_registered_with_applicability():
    for name in ("token_lost", "csma_always_defer"):
        assert name in MUTATIONS
        assert MUTATION_PROTOCOLS[name] == ("widir",)
    assert MUTATION_MACS["token_lost"] == ("token",)
    assert MUTATION_MACS["csma_always_defer"] == ("csma_slotted",)
    # MAC-scoped mutations refuse machines on the wrong MAC.
    from repro.verify.mutations import apply_mutation

    machine = Manycore(SystemConfig(num_cores=4, protocol="widir"))
    with pytest.raises(ValueError):
        apply_mutation(machine, "token_lost")
    with pytest.raises(ValueError):
        apply_mutation(machine, "csma_always_defer")


def test_mutation_token_lost_caught_and_replayable(tmp_path):
    """A vanished token deadlocks the channel; the failure shrinks and
    replays from a serialized artifact (config carries the MAC)."""
    spec = generate_trial(
        0, 6, num_cores=8, ops_per_core=30, protocol="widir",
        check_interval=150, mac="token",
    )
    spec.mutation = "token_lost"
    spec.max_events = 150_000  # bounded: the deadlock shows up fast
    result = execute_trial(spec)
    assert not result.ok
    assert "max_events" in result.failure or "deadlock" in result.failure

    shrunk = shrink_trial(spec, max_checks=12)
    assert 0 < shrunk.total_ops <= spec.total_ops
    artifact = FailureArtifact(
        campaign="smoke", seed=0, trial_index=6, failure=result.failure,
        spec=shrunk, shrunk=True,
        original_ops=spec.total_ops, shrunk_ops=shrunk.total_ops,
    )
    loaded = FailureArtifact.load(artifact.save(tmp_path / "token.json"))
    assert SystemConfig.from_dict(loaded.spec.config).mac == "token"
    replay = execute_trial(loaded.spec)
    assert not replay.ok
    assert execute_trial(loaded.spec).failure == replay.failure


def test_mutation_csma_always_defer_deadlocks():
    spec = generate_trial(
        0, 7, num_cores=8, ops_per_core=30, protocol="widir",
        check_interval=150, mac="csma_slotted",
    )
    spec.mutation = "csma_always_defer"
    spec.max_events = 150_000
    result = execute_trial(spec)
    assert not result.ok
    assert "max_events" in result.failure or "deadlock" in result.failure


# ----------------------------------------------- fuzz with channel errors


def test_fuzz_trial_with_channel_errors_is_clean_and_deterministic():
    """Seeded corruption + missed tones on a correct machine must pass
    every oracle, deterministically, on every MAC."""
    for index, mac in enumerate(mac_names()):
        spec = generate_trial(
            21, index, num_cores=8, ops_per_core=25, protocol="widir",
            mac=mac, channel_errors=True,
        )
        assert SystemConfig.from_dict(spec.config).channel_errors.enabled
        first = execute_trial(spec)
        assert first.ok, (mac, first.failure)
        second = execute_trial(spec)
        assert (first.digest, first.cycles) == (second.digest, second.cycles)


if __name__ == "__main__":  # pragma: no cover - golden regeneration aid
    for _mac in mac_names():
        print(f'    "{_mac}": "{run_mac_differential(_mac)[0]}",')
    for _mac in mac_names():
        print(
            f'    "{_mac}+err": '
            f'"{run_mac_differential(_mac, errors=True)[0]}",'
        )
