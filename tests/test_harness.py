"""Tests for the experiment harness (runner, figures, motivation probe)."""

import pytest

from repro.config import baseline_config, widir_config
from repro.harness.figures import (
    figure5_sharer_histogram,
    figure6_mpki,
    table4_mpki_characterization,
    table5_hop_distribution,
)
from repro.harness.motivation import section2c_sharing_probe
from repro.harness.runner import SimulationResult, run_app, run_pair

FAST = dict(memops_per_core=200)
APPS = ("radiosity", "blackscholes")


class TestRunner:
    def test_run_app_produces_complete_result(self):
        result = run_app("radiosity", widir_config(num_cores=8), 200)
        assert isinstance(result, SimulationResult)
        assert result.cycles > 0
        assert result.instructions > 0
        assert result.mpki > 0
        assert result.memory_stall_cycles > 0
        assert set(result.sharer_histogram) == {"0-5", "6-10", "11-25", "26-49", "50+"}
        assert set(result.hop_histogram) == {"0-2", "3-5", "6-8", "9-11", "12+"}
        assert result.energy.total > 0

    def test_baseline_has_no_wireless_activity(self):
        result = run_app("radiosity", baseline_config(num_cores=8), 200)
        assert result.wireless_writes == 0
        assert result.collision_probability == 0.0
        assert result.energy.wnoc == 0.0

    def test_widir_energy_includes_wnoc(self):
        result = run_app("radiosity", widir_config(num_cores=8), 200)
        assert result.energy.wnoc > 0

    def test_run_pair_shares_reference_stream(self):
        base, widir = run_pair("fft", num_cores=8, **FAST)
        assert base.instructions == widir.instructions
        assert base.app == widir.app == "fft"
        assert base.config.protocol == "baseline"
        assert widir.config.protocol == "widir"

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            run_app("doom", widir_config(num_cores=4), 100)

    def test_determinism_across_runs(self):
        a = run_app("barnes", widir_config(num_cores=8, seed=9), 200)
        b = run_app("barnes", widir_config(num_cores=8, seed=9), 200)
        assert a.cycles == b.cycles
        assert a.stats_counters == b.stats_counters

    def test_derived_metrics_consistent(self):
        result = run_app("fft", widir_config(num_cores=8), 200)
        assert result.misses == result.read_misses + result.write_misses
        assert result.mpki == pytest.approx(
            1000.0 * result.misses / result.instructions
        )
        assert (
            result.total_memory_latency
            == result.load_latency_total + result.store_latency_total
        )
        assert 0.0 <= result.memory_stall_fraction <= 1.0


class TestFigures:
    def test_table4_rows_per_app(self):
        figure = table4_mpki_characterization(apps=APPS, num_cores=8, memops=150)
        assert [row[0] for row in figure.rows] == list(APPS)
        assert all(row[1] >= 0 for row in figure.rows)
        assert "Table IV" in figure.text

    def test_figure5_fractions_normalized(self):
        figure = figure5_sharer_histogram(apps=("radiosity",), num_cores=8, memops=200)
        fractions = figure.rows[0][1:]
        assert abs(sum(fractions) - 1.0) < 1e-9 or sum(fractions) == 0.0

    def test_figure6_normalized_to_baseline(self):
        figure = figure6_mpki(apps=("radiosity",), num_cores=8, memops=200)
        app_row = figure.rows[0]
        base_total = app_row[1] + app_row[2]
        assert base_total == pytest.approx(1.0)
        assert figure.rows[-1][0] == "geomean"

    def test_table5_distribution_sums_to_one(self):
        figure = table5_hop_distribution(apps=("fft",), num_cores=16, memops=150)
        assert sum(row[1] for row in figure.rows) == pytest.approx(1.0)


class TestMotivationProbe:
    def test_probe_reports_both_metrics(self):
        result = section2c_sharing_probe(apps=["radiosity"], num_cores=32, memops=400)
        assert result.avg_sharers > 1.0
        assert 0.0 <= result.avg_reread <= 1.0
        assert "Section II-C" in result.text

    def test_wide_sharing_app_accumulates_many_sharers(self):
        wide = section2c_sharing_probe(apps=["radiosity"], num_cores=64, memops=400)
        # Update-mode sharing accumulates double-digit sharer counts on a
        # 64-core machine (the paper reports ~21 on average).
        assert wide.avg_sharers > 5
