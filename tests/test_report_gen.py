"""Tests for the Markdown report generator."""

import pytest

from repro.harness.report_gen import generate_report
from repro.harness.sweeps import sweep_protocols


@pytest.fixture(scope="module")
def sweep_results():
    return sweep_protocols(["volrend", "fft"], num_cores=8, memops=150)


class TestReport:
    def test_contains_all_sections(self, sweep_results):
        report = generate_report(sweep_results)
        for heading in (
            "# WiDir sweep report",
            "## Execution time",
            "## L1 misses per kilo-instruction",
            "## Wireless activity",
            "## Energy",
        ):
            assert heading in report

    def test_one_row_per_app(self, sweep_results):
        report = generate_report(sweep_results)
        assert report.count("| volrend |") == 4  # one per section
        assert report.count("| fft |") == 4

    def test_speedup_column_formatted(self, sweep_results):
        report = generate_report(sweep_results)
        assert "x |" in report

    def test_custom_title(self, sweep_results):
        report = generate_report(sweep_results, title="Nightly")
        assert report.startswith("# Nightly")

    def test_unpaired_results_noted(self, sweep_results):
        partial = dict(list(sweep_results.items())[:3])  # breaks one pair
        report = generate_report(partial)
        assert "unpaired" in report

    def test_markdown_tables_well_formed(self, sweep_results):
        report = generate_report(sweep_results)
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")
