"""Unit and property tests for the directory/LLC array."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.directory import DirectoryArray, DirectoryEntry
from repro.engine.errors import SimulationError


class TestBasics:
    def test_insert_lookup_remove(self):
        array = DirectoryArray(4, 2)
        entry = array.insert(0x10)
        assert array.lookup(0x10) is entry
        assert array.remove(0x10) is entry
        assert array.lookup(0x10) is None

    def test_fresh_entry_defaults(self):
        entry = DirectoryArray(4, 2).insert(0x40)
        assert entry.state == "I"
        assert entry.owner is None
        assert entry.sharers == set()
        assert not entry.broadcast
        assert not entry.coarse_regions
        assert not entry.has_data
        assert not entry.busy
        assert len(entry.deferred) == 0

    def test_double_insert_rejected(self):
        array = DirectoryArray(4, 2)
        array.insert(0x10)
        with pytest.raises(SimulationError):
            array.insert(0x10)

    def test_remove_missing_raises(self):
        with pytest.raises(SimulationError):
            DirectoryArray(4, 2).remove(0x10)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(SimulationError):
            DirectoryArray(3, 2)


class TestVictims:
    def test_victim_is_lru_non_busy(self):
        array = DirectoryArray(1, 2)
        first = array.insert(10)
        array.insert(20)
        first.busy = True  # pinned by an in-flight transaction
        victim = array.victim_for(30)
        assert victim.line == 20

    def test_all_busy_returns_none(self):
        array = DirectoryArray(1, 2)
        array.insert(10).busy = True
        array.insert(20).busy = True
        assert array.victim_for(30) is None

    def test_no_victim_when_room(self):
        array = DirectoryArray(1, 2)
        array.insert(10)
        assert array.victim_for(20) is None
        assert not array.needs_victim(20)

    def test_lookup_touch_changes_lru(self):
        array = DirectoryArray(1, 2)
        array.insert(10)
        array.insert(20)
        array.lookup(10)  # 10 becomes MRU
        assert array.victim_for(30).line == 20


class TestEntriesIteration:
    def test_entries_spans_all_sets(self):
        array = DirectoryArray(4, 2)
        for line in range(8):
            array.insert(line)
        assert sorted(e.line for e in array.entries()) == list(range(8))


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "remove", "busy", "idle"]),
                  st.integers(0, 31)),
        max_size=80,
    )
)
def test_property_array_matches_reference_model(ops):
    array = DirectoryArray(4, 4)
    reference = {}
    for op, line in ops:
        if op == "insert" and line not in reference:
            if array.needs_victim(line):
                victim = array.victim_for(line)
                if victim is None:
                    continue  # all busy: caller polls in the real system
                array.remove(victim.line)
                del reference[victim.line]
            reference[line] = array.insert(line)
        elif op == "remove" and line in reference:
            array.remove(line)
            del reference[line]
        elif op == "busy" and line in reference:
            reference[line].busy = True
        elif op == "idle" and line in reference:
            reference[line].busy = False
    assert sorted(e.line for e in array.entries()) == sorted(reference)
    # Busy entries are never offered as victims.
    for line in range(32):
        if array.needs_victim(line):
            victim = array.victim_for(line)
            assert victim is None or not victim.busy
