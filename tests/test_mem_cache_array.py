"""Unit and property tests for the set-associative cache array."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.errors import SimulationError
from repro.mem.cache_array import CacheArray


def make_array(num_sets=4, associativity=2):
    return CacheArray(num_sets, associativity)


class TestBasics:
    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(SimulationError):
            CacheArray(3, 2)

    def test_rejects_zero_associativity(self):
        with pytest.raises(SimulationError):
            CacheArray(4, 0)

    def test_insert_then_lookup(self):
        array = make_array()
        array.insert(0x10, "S")
        entry = array.lookup(0x10)
        assert entry is not None
        assert entry.state == "S"
        assert 0x10 in array

    def test_lookup_missing_returns_none(self):
        array = make_array()
        assert array.lookup(0x99) is None
        assert 0x99 not in array

    def test_double_insert_rejected(self):
        array = make_array()
        array.insert(0x10, "S")
        with pytest.raises(SimulationError):
            array.insert(0x10, "M")

    def test_remove_returns_final_contents(self):
        array = make_array()
        entry = array.insert(0x10, "M")
        entry.data[3] = 42
        removed = array.remove(0x10)
        assert removed.data == {3: 42}
        assert 0x10 not in array

    def test_remove_missing_raises(self):
        array = make_array()
        with pytest.raises(SimulationError):
            array.remove(0x10)

    def test_insert_into_full_set_raises(self):
        array = make_array(num_sets=4, associativity=2)
        array.insert(0, "S")
        array.insert(4, "S")  # same set (line % 4 == 0)
        with pytest.raises(SimulationError):
            array.insert(8, "S")


class TestVictimSelection:
    def test_no_victim_needed_when_room(self):
        array = make_array()
        array.insert(0, "S")
        assert not array.needs_victim(4)
        assert array.victim_for(4) is None

    def test_victim_is_lru(self):
        array = make_array(num_sets=1, associativity=2)
        array.insert(10, "S")
        array.insert(20, "S")
        array.lookup(10)  # 10 becomes MRU; 20 is now LRU
        victim = array.victim_for(30)
        assert victim.line == 20

    def test_lookup_without_touch_preserves_lru(self):
        array = make_array(num_sets=1, associativity=2)
        array.insert(10, "S")
        array.insert(20, "S")
        array.lookup(10, touch=False)
        victim = array.victim_for(30)
        assert victim.line == 10  # still LRU

    def test_pinned_lines_skipped(self):
        array = make_array(num_sets=1, associativity=2)
        a = array.insert(10, "S")
        array.insert(20, "S")
        a.pinned += 1
        victim = array.victim_for(30)
        assert victim.line == 20

    def test_all_pinned_raises(self):
        array = make_array(num_sets=1, associativity=2)
        array.insert(10, "S").pinned += 1
        array.insert(20, "S").pinned += 1
        with pytest.raises(SimulationError):
            array.victim_for(30)

    def test_resident_line_never_needs_victim(self):
        array = make_array(num_sets=1, associativity=1)
        array.insert(10, "S")
        assert not array.needs_victim(10)


class TestIteration:
    def test_lines_iterates_all(self):
        array = make_array(num_sets=4, associativity=2)
        for line in range(8):
            array.insert(line, "S")
        assert sorted(e.line for e in array.lines()) == list(range(8))

    def test_ways_of_lru_order(self):
        array = make_array(num_sets=1, associativity=3)
        for line in (1, 2, 3):
            array.insert(line, "S")
        array.lookup(1)
        assert [e.line for e in array.ways_of(0)] == [2, 3, 1]


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "lookup", "remove"]), st.integers(0, 63)),
        max_size=120,
    )
)
def test_property_occupancy_and_capacity(ops):
    """Invariants: set occupancy never exceeds associativity; resident set
    always matches the reference model."""
    array = CacheArray(num_sets=4, associativity=2)
    reference = set()
    for op, line in ops:
        if op == "insert" and line not in reference:
            if array.needs_victim(line):
                victim = array.victim_for(line)
                array.remove(victim.line)
                reference.discard(victim.line)
            array.insert(line, "S")
            reference.add(line)
        elif op == "lookup":
            entry = array.lookup(line)
            assert (entry is not None) == (line in reference)
        elif op == "remove" and line in reference:
            array.remove(line)
            reference.discard(line)
        assert len(array) == len(reference)
        for s in range(4):
            assert array.set_occupancy(s) <= 2
    assert sorted(e.line for e in array.lines()) == sorted(reference)


@settings(max_examples=40, deadline=None)
@given(touches=st.lists(st.integers(0, 3), min_size=4, max_size=40))
def test_property_victim_is_least_recently_touched(touches):
    """The victim in a single set is always the least recently used line."""
    array = CacheArray(num_sets=1, associativity=4)
    lines = [10, 20, 30, 40]
    for line in lines:
        array.insert(line, "S")
    order = list(lines)  # LRU -> MRU
    for index in touches:
        line = lines[index]
        array.lookup(line)
        order.remove(line)
        order.append(line)
    assert array.victim_for(99).line == order[0]
