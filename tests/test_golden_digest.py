"""Golden-run determinism digests.

These tests lock the *simulated behaviour* of the machine: a fixed-seed
Baseline (MESI) run and a fixed-seed WiDir run must produce exactly the
same statistics — every counter, cycle count, histogram bin, and latency
accumulator — as the tree they were recorded on. The digests below were
computed on the pre-fast-path tree (PR 1 seed state) and hardcoded, so any
perf work that changes simulated behaviour (rather than just wall-clock)
fails here first.

The digest covers the full sorted ``StatsRegistry`` counter map plus the
headline result fields, serialized canonically and hashed with sha256.
Floats go through ``repr`` (exact round-trip for IEEE doubles), so the
digest is stable across processes and platforms for integer-dominated
stats.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace

import pytest

from repro.config.presets import baseline_config, widir_config
from repro.harness.runner import run_app

#: Fixed workload for the golden runs: small enough to be quick in tier-1,
#: large enough to exercise every protocol path (upgrades, S->W, W->S,
#: recalls, wireless RMWs, evictions).
GOLDEN_APP = "radiosity"
GOLDEN_CORES = 16
GOLDEN_MEMOPS = 400
GOLDEN_SEED = 42
GOLDEN_TRACE_SEED = 7

#: sha256 digests recorded on the pre-change tree (see module docstring).
GOLDEN_BASELINE_DIGEST = (
    "e48bcd643073a68d41eaad7f6323077efddd30a5cb4e93b156b2288a3823f5b1"
)
GOLDEN_WIDIR_DIGEST = (
    "172da0cc5342cf0995c04ab5cef03a973943545b0bae3536611a26399f90a944"
)

#: Threshold sweep: the same WiDir workload with ``MaxWiredSharers`` forced
#: to the extremes. mws=1 pushes nearly every shared line into the W state
#: (fallback path digest-locked); mws=3 is the preset default, so its digest
#: equals GOLDEN_WIDIR_DIGEST *by construction* — keeping it in the sweep
#: locks the S->W re-entry path explicitly and catches accidental drift of
#: the preset default itself.
GOLDEN_WIDIR_THRESHOLD_DIGESTS = {
    1: "982dccb18afcf69b770e42649e1d110064d4cf36708e7a360dc8dceea67564a4",
    3: "172da0cc5342cf0995c04ab5cef03a973943545b0bae3536611a26399f90a944",
}


def golden_digest(result) -> str:
    """Canonical sha256 digest of one run's observable behaviour."""
    payload = {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "memory_stall_cycles": result.memory_stall_cycles,
        "sync_stall_cycles": result.sync_stall_cycles,
        "load_latency_total": result.load_latency_total,
        "store_latency_total": result.store_latency_total,
        "read_misses": result.read_misses,
        "write_misses": result.write_misses,
        "wireless_writes": result.wireless_writes,
        "sharer_histogram": dict(sorted(result.sharer_histogram.items())),
        "hop_histogram": dict(sorted(result.hop_histogram.items())),
        "collision_probability": repr(result.collision_probability),
        "stats_counters": dict(sorted(result.stats_counters.items())),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _run(config) -> str:
    result = run_app(
        GOLDEN_APP, config, memops_per_core=GOLDEN_MEMOPS,
        trace_seed=GOLDEN_TRACE_SEED,
    )
    return golden_digest(result)


def test_golden_baseline_digest():
    digest = _run(
        baseline_config(num_cores=GOLDEN_CORES, seed=GOLDEN_SEED)
    )
    assert digest == GOLDEN_BASELINE_DIGEST, (
        "Baseline (MESI) golden run diverged from the recorded digest: "
        f"{digest}. The fast path must be bit-identical in simulated "
        "behaviour; if a change is *intentional*, re-record the digest."
    )


def test_golden_widir_digest():
    digest = _run(widir_config(num_cores=GOLDEN_CORES, seed=GOLDEN_SEED))
    assert digest == GOLDEN_WIDIR_DIGEST, (
        "WiDir golden run diverged from the recorded digest: "
        f"{digest}. The fast path must be bit-identical in simulated "
        "behaviour; if a change is *intentional*, re-record the digest."
    )


@pytest.mark.parametrize(
    "mws", sorted(GOLDEN_WIDIR_THRESHOLD_DIGESTS), ids=lambda m: f"mws{m}"
)
def test_golden_widir_threshold_sweep_digest(mws):
    """Digest-lock the W-state fallback (mws=1) and re-entry (mws=3) paths,
    not just the default config."""
    cfg = widir_config(num_cores=GOLDEN_CORES, seed=GOLDEN_SEED)
    cfg = replace(
        cfg,
        directory=replace(cfg.directory, max_wired_sharers=mws),
    )
    digest = _run(cfg)
    assert digest == GOLDEN_WIDIR_THRESHOLD_DIGESTS[mws], (
        f"WiDir MaxWiredSharers={mws} golden run diverged from the recorded "
        f"digest: {digest}. The threshold fallback/re-entry paths must be "
        "bit-identical; if a change is *intentional*, re-record the digest."
    )


def test_golden_widir_default_matches_threshold_entry():
    """The preset default (mws=3) is pinned by the sweep table; if the
    preset ever changes its default, this cross-check fires before the
    digest silently moves to a different table row."""
    cfg = widir_config(num_cores=GOLDEN_CORES, seed=GOLDEN_SEED)
    assert cfg.directory.max_wired_sharers == 3
    assert GOLDEN_WIDIR_THRESHOLD_DIGESTS[3] == GOLDEN_WIDIR_DIGEST


def test_golden_digest_is_repeatable_in_process():
    """Two identical runs in one process digest identically (no hidden
    global state leaks between Manycore instances)."""
    config = widir_config(num_cores=8, seed=3)
    first = run_app(GOLDEN_APP, config, memops_per_core=120, trace_seed=1)
    second = run_app(GOLDEN_APP, config, memops_per_core=120, trace_seed=1)
    assert golden_digest(first) == golden_digest(second)
