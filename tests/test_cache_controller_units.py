"""Unit-level tests of the L1 cache controller's message/frame handlers."""

import pytest

from repro.coherence import messages as mk
from repro.config import baseline_config, widir_config
from repro.engine.errors import ProtocolError
from repro.noc.message import Message
from repro.system import Manycore
from repro.wireless.frames import WirelessFrame

ADDR = 0x0008_0000


def make(protocol="widir", cores=8):
    build = widir_config if protocol == "widir" else baseline_config
    return Manycore(build(num_cores=cores))


def settle_load(machine, core, address=ADDR):
    out = []
    machine.caches[core].load(address, out.append)
    machine.run(max_events=10_000_000)
    return out[0]


def settle_store(machine, core, value, address=ADDR):
    done = []
    machine.caches[core].store(address, value, lambda: done.append(1))
    machine.run(max_events=10_000_000)
    assert done


class TestInvHandling:
    def test_inv_on_absent_line_acks(self):
        machine = make("baseline")
        cache = machine.caches[2]
        line = machine.amap.line_of(ADDR)
        acks = []
        original = machine.mesh.send

        def spy(message, extra_delay=0):
            if message.kind == mk.INV_ACK:
                acks.append(message)
            original(message, extra_delay)

        machine.mesh.send = spy
        cache.handle_message(Message(mk.INV, 0, 2, line))
        machine.run(max_events=100_000)
        assert len(acks) == 1

    def test_inv_needs_data_returns_dirty_payload(self):
        machine = make("baseline")
        settle_store(machine, 2, 99)
        cache = machine.caches[2]
        line = machine.amap.line_of(ADDR)
        responses = []
        original = machine.mesh.send

        def spy(message, extra_delay=0):
            if message.kind == mk.INV_ACK_DATA:
                responses.append(message.payload)
            original(message, extra_delay)

        machine.mesh.send = spy
        home = machine.amap.home_of(line)
        cache.handle_message(Message(mk.INV, home, 2, line, {"needs_data": True}))
        machine.run(max_events=100_000)
        assert responses and responses[0]["dirty"]
        assert responses[0]["data"][0] == 99

    def test_inv_does_not_touch_wireless_lines(self):
        """A maximally delayed Inv from a pre-W epoch only gets an ack."""
        machine = make("widir")
        for core in range(5):
            settle_load(machine, core)
        line = machine.amap.line_of(ADDR)
        cache = machine.caches[1]
        assert cache.array.lookup(line, touch=False).state == "W"
        cache.handle_message(Message(mk.INV, 0, 1, line))
        machine.run(max_events=100_000)
        assert cache.array.lookup(line, touch=False).state == "W"
        machine.check_coherence()


class TestFrameHandling:
    def test_wir_upd_ignored_without_line(self):
        machine = make("widir")
        machine.caches[3].handle_frame(
            WirelessFrame(mk.WIR_UPD, 0, machine.amap.line_of(ADDR), 0, 5)
        )
        machine.run(max_events=10_000)

    def test_own_wir_upd_echo_ignored(self):
        machine = make("widir")
        for core in range(5):
            settle_load(machine, core)
        line = machine.amap.line_of(ADDR)
        entry = machine.caches[2].array.lookup(line, touch=False)
        before = entry.update_count
        machine.caches[2].handle_frame(
            WirelessFrame(mk.WIR_UPD, 2, line, 0, 123)
        )
        assert entry.update_count == before
        assert entry.data.get(0, 0) != 123  # own echo must not apply

    def test_foreign_wir_upd_applies_and_counts(self):
        machine = make("widir")
        for core in range(5):
            settle_load(machine, core)
        line = machine.amap.line_of(ADDR)
        entry = machine.caches[2].array.lookup(line, touch=False)
        machine.caches[2].handle_frame(
            WirelessFrame(mk.WIR_UPD, 0, line, 3, 777)
        )
        assert entry.data[3] == 777
        assert entry.update_count == 1

    def test_wir_dwgr_without_line_is_silent(self):
        machine = make("widir")
        machine.caches[3].handle_frame(
            WirelessFrame(mk.WIR_DWGR, 0, machine.amap.line_of(ADDR))
        )
        machine.run(max_events=10_000)

    def test_duplicate_wir_upgr_is_idempotent(self):
        machine = make("widir")
        for core in range(5):
            settle_load(machine, core)
        line = machine.amap.line_of(ADDR)
        cache = machine.caches[1]
        home = machine.amap.home_of(line)
        snapshot = dict(cache.array.lookup(line, touch=False).data)
        cache.handle_message(
            Message(
                mk.WIR_UPGR, home, 1, line,
                {"data": snapshot, "ack_required": True},
            )
        )
        machine.run(max_events=1_000_000)
        refreshed = cache.array.lookup(line, touch=False)
        assert refreshed.state == "W"
        assert refreshed.data == snapshot
        machine.check_coherence()


class TestErrorPaths:
    def test_unknown_wired_kind_raises(self):
        machine = make("baseline")
        with pytest.raises(ProtocolError):
            machine.caches[0].handle_message(
                Message("Martian", 1, 0, machine.amap.line_of(ADDR))
            )

    def test_unsolicited_forward_raises(self):
        machine = make("baseline")
        with pytest.raises(ProtocolError):
            machine.caches[0].handle_message(
                Message(
                    mk.FWD_GETS, 1, 0, machine.amap.line_of(ADDR),
                    {"requester": 2},
                )
            )

    def test_wireless_store_without_channel_raises(self):
        machine = make("baseline")
        settle_load(machine, 0)
        line = machine.amap.line_of(ADDR)
        entry = machine.caches[0].array.lookup(line, touch=False)
        entry.state = "W"  # forge an impossible state on a wired machine
        with pytest.raises(ProtocolError):
            machine.caches[0].store(ADDR, 1, lambda: None)


class TestUpdateCountEdges:
    def test_pinned_line_never_self_invalidates(self):
        machine = make("widir")
        for core in range(5):
            settle_load(machine, core)
        line = machine.amap.line_of(ADDR)
        cache = machine.caches[2]
        entry = cache.array.lookup(line, touch=False)
        entry.pinned += 1
        threshold = machine.config.directory.update_count_threshold
        for i in range(threshold + 3):
            cache.handle_frame(WirelessFrame(mk.WIR_UPD, 0, line, 0, i))
        assert cache.array.lookup(line, touch=False) is not None
        entry.pinned -= 1

    def test_update_count_saturates_into_self_invalidation(self):
        machine = make("widir")
        for core in range(5):
            settle_load(machine, core)
        line = machine.amap.line_of(ADDR)
        cache = machine.caches[2]
        threshold = machine.config.directory.update_count_threshold
        for i in range(threshold):
            cache.handle_frame(WirelessFrame(mk.WIR_UPD, 0, line, 0, i))
        machine.run(max_events=1_000_000)
        assert cache.array.lookup(line, touch=False) is None
        # The PutW reached the home and decremented the count.
        home = machine.amap.home_of(line)
        entry = machine.directories[home].array.lookup(line, touch=False)
        assert entry.sharer_count <= 4
