"""Tests for the result cross-validation helpers."""

import pytest

from repro.config import baseline_config, widir_config
from repro.harness.runner import run_app
from repro.harness.validate import validate_result, warnings_only


@pytest.fixture(scope="module")
def widir_result():
    return run_app("radiosity", widir_config(num_cores=8), 300)


@pytest.fixture(scope="module")
def baseline_result():
    return run_app("radiosity", baseline_config(num_cores=8), 300)


class TestValidation:
    def test_clean_widir_run_has_no_warnings(self, widir_result):
        assert warnings_only(validate_result(widir_result)) == []

    def test_clean_baseline_run_has_no_warnings(self, baseline_result):
        assert warnings_only(validate_result(baseline_result)) == []

    def test_widir_run_reports_channel_info(self, widir_result):
        findings = validate_result(widir_result)
        assert any(
            f.severity == "info" and "wireless" in f.message for f in findings
        )

    def test_forged_wireless_writes_on_baseline_flagged(self, baseline_result):
        baseline_result.wireless_writes = 5
        findings = warnings_only(validate_result(baseline_result))
        assert any("baseline machine reports wireless" in f.message for f in findings)
        baseline_result.wireless_writes = 0

    def test_forged_missing_histogram_flagged(self, widir_result):
        saved = dict(widir_result.sharer_histogram)
        try:
            for key in widir_result.sharer_histogram:
                widir_result.sharer_histogram[key] = 0
            if widir_result.wireless_writes:
                findings = warnings_only(validate_result(widir_result))
                assert any("histogram" in f.message for f in findings)
        finally:
            widir_result.sharer_histogram.update(saved)

    def test_forged_excess_stall_flagged(self, widir_result):
        saved = widir_result.memory_stall_cycles
        try:
            widir_result.memory_stall_cycles = 10**12
            findings = warnings_only(validate_result(widir_result))
            assert any("stall cycles exceed" in f.message for f in findings)
        finally:
            widir_result.memory_stall_cycles = saved
