"""Integration tests: whole-machine scenarios across both protocols."""

import itertools

import pytest
from dataclasses import replace

from repro.config import baseline_config, widir_config
from repro.config.system import CacheConfig
from repro.engine.rng import DeterministicRng
from repro.system import Manycore


def drive_storm(machine, num_cores, iters, seed=7, lines=10, base=0x0200_0000):
    """Random concurrent load/store/rmw storm; returns the machine."""
    rng = DeterministicRng(seed)
    remaining = {c: iters for c in range(num_cores)}

    def step(core):
        if remaining[core] == 0:
            return
        remaining[core] -= 1
        address = base + (rng.next_u64() % lines) * 64 + 8 * (rng.next_u64() % 8)
        roll = rng.next_u64() % 10
        if roll < 3:
            machine.caches[core].store(
                address, rng.next_u64() % 10**6, lambda c=core: step(c)
            )
        elif roll < 4:
            machine.caches[core].rmw(address, lambda _v, c=core: step(c))
        else:
            machine.caches[core].load(address, lambda _v, c=core: step(c))

    for core in range(num_cores):
        step(core)
    machine.run(max_events=300_000_000)
    assert all(v == 0 for v in remaining.values()), "storm did not drain"
    return machine


class TestStorms:
    @pytest.mark.parametrize("protocol", ["baseline", "widir"])
    @pytest.mark.parametrize("cores", [4, 16])
    def test_storm_remains_coherent(self, protocol, cores):
        config = (
            baseline_config(num_cores=cores)
            if protocol == "baseline"
            else widir_config(num_cores=cores)
        )
        machine = drive_storm(Manycore(config), cores, iters=80)
        machine.check_coherence()

    def test_storm_is_deterministic(self):
        cycles = set()
        for _ in range(2):
            machine = drive_storm(
                Manycore(widir_config(num_cores=8, seed=3)), 8, iters=60
            )
            cycles.add(machine.sim.now)
        assert len(cycles) == 1


class TestDirectoryEvictionPressure:
    def _tiny_llc_config(self, protocol, cores=8):
        make = widir_config if protocol == "widir" else baseline_config
        small = CacheConfig(size_bytes=256, associativity=2, round_trip_cycles=12)
        return replace(make(num_cores=cores), l2=small)

    @pytest.mark.parametrize("protocol", ["baseline", "widir"])
    def test_llc_conflict_evictions_preserve_values(self, protocol):
        machine = Manycore(self._tiny_llc_config(protocol))
        amap = machine.amap
        # Find many lines that collide on one home's tiny 2-set LLC.
        target_home = 0
        colliders = []
        line = 0x800000
        while len(colliders) < 6:
            if amap.home_of(line) == target_home and (line & 1) == 0:
                colliders.append(line)
            line += 1
        values = {}
        for i, line_addr in enumerate(colliders):
            address = amap.base_of(line_addr)
            values[address] = 40_000 + i
            done = []
            machine.caches[i % 8].store(address, 40_000 + i, lambda: done.append(1))
            machine.run(max_events=30_000_000)
            assert done
        for address, expected in values.items():
            out = []
            machine.caches[7].load(address, out.append)
            machine.run(max_events=30_000_000)
            assert out[0] == expected
        machine.check_coherence()

    def test_wireless_line_eviction_reissues_writes(self):
        """A WirInv mid-flight squashes pending writes which retry wired."""
        machine = Manycore(self._tiny_llc_config("widir"))
        amap = machine.amap
        target_home = 1
        colliders = []
        line = 0x900000
        while len(colliders) < 4:
            if amap.home_of(line) == target_home and (line & 1) == 1:
                colliders.append(line)
            line += 1
        first = amap.base_of(colliders[0])
        # Drive the first line wireless.
        for core in range(6):
            out = []
            machine.caches[core].load(first, out.append)
            machine.run(max_events=30_000_000)
        # Conflict-evict it by touching same-set lines, while writing it.
        done = []
        machine.caches[0].store(first, 777, lambda: done.append(1))
        for other in colliders[1:]:
            machine.caches[7].load(amap.base_of(other), lambda v: None)
        machine.run(max_events=60_000_000)
        assert done
        out = []
        machine.caches[5].load(first, out.append)
        machine.run(max_events=30_000_000)
        assert out[0] == 777
        machine.check_coherence()


class TestCrossProtocolEquivalence:
    """Both protocols must compute identical values for identical inputs."""

    def test_same_final_memory_state(self):
        results = {}
        for protocol, make in (("baseline", baseline_config), ("widir", widir_config)):
            machine = drive_storm(Manycore(make(num_cores=8, seed=4)), 8, iters=100)
            state = {}
            for core in range(8):
                for entry in machine.caches[core].array.lines():
                    pass  # values checked via loads below
            reads = {}
            for i in range(10):
                address = 0x0200_0000 + i * 64
                machine.caches[0].load(
                    address, lambda v, a=address: reads.__setitem__(a, v)
                )
            machine.run(max_events=10_000_000)
            results[protocol] = reads
        assert results["baseline"] == results["widir"]


class TestScalability:
    @pytest.mark.parametrize("cores", [2, 4, 8, 16, 32])
    def test_machine_builds_and_runs_at_any_scale(self, cores):
        machine = Manycore(widir_config(num_cores=cores))
        out = []
        machine.caches[0].store(0x4000, 5, lambda: out.append(1))
        machine.run(max_events=1_000_000)
        machine.caches[cores - 1].load(0x4000, out.append)
        machine.run(max_events=1_000_000)
        assert out == [1, 5]
        machine.check_coherence()
