"""Tests for the tone channel / ToneAck primitive."""

import pytest

from repro.engine.simulator import Simulator
from repro.stats.collectors import StatsRegistry
from repro.wireless.tone import ToneChannel


def make_tone(tone_cycles=1):
    sim = Simulator()
    return sim, ToneChannel(sim, tone_cycles, StatsRegistry())


class TestToneAck:
    def test_silence_fires_after_all_drops(self):
        sim, tone = make_tone()
        fired = []
        tone.begin(0x40, {0, 1, 2}, lambda: fired.append(sim.now))
        tone.drop(0x40, 0)
        tone.drop(0x40, 1)
        sim.run()
        assert fired == []
        tone.drop(0x40, 2)
        sim.run()
        assert len(fired) == 1

    def test_detection_latency_applied(self):
        sim, tone = make_tone(tone_cycles=3)
        fired = []
        tone.begin(0x40, {0}, lambda: fired.append(sim.now))
        sim.schedule(10, lambda: tone.drop(0x40, 0))
        sim.run()
        assert fired == [13]  # drop at 10 + 3 cycles to detect silence

    def test_empty_participant_set_completes_immediately(self):
        sim, tone = make_tone()
        fired = []
        tone.begin(0x40, set(), lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1]

    def test_duplicate_drops_are_idempotent(self):
        sim, tone = make_tone()
        fired = []
        tone.begin(0x40, {0, 1}, lambda: fired.append(True))
        tone.drop(0x40, 0)
        tone.drop(0x40, 0)
        tone.drop(0x40, 0)
        sim.run()
        assert fired == []
        tone.drop(0x40, 1)
        sim.run()
        assert fired == [True]

    def test_drop_for_unknown_operation_is_harmless(self):
        sim, tone = make_tone()
        tone.drop(0x99, 5)  # nothing in flight
        sim.run()

    def test_late_drop_after_completion_is_harmless(self):
        sim, tone = make_tone()
        fired = []
        tone.begin(0x40, {0}, lambda: fired.append(True))
        tone.drop(0x40, 0)
        sim.run()
        tone.drop(0x40, 3)  # straggler
        sim.run()
        assert fired == [True]

    def test_concurrent_operations_on_distinct_lines(self):
        sim, tone = make_tone()
        fired = []
        tone.begin(0x40, {0, 1}, lambda: fired.append(0x40))
        tone.begin(0x80, {2}, lambda: fired.append(0x80))
        tone.drop(0x80, 2)
        sim.run()
        assert fired == [0x80]
        tone.drop(0x40, 0)
        tone.drop(0x40, 1)
        sim.run()
        assert fired == [0x80, 0x40]

    def test_double_begin_same_key_rejected(self):
        sim, tone = make_tone()
        tone.begin(0x40, {0}, lambda: None)
        with pytest.raises(KeyError):
            tone.begin(0x40, {1}, lambda: None)

    def test_in_flight_query(self):
        sim, tone = make_tone()
        assert not tone.in_flight(0x40)
        tone.begin(0x40, {0}, lambda: None)
        assert tone.in_flight(0x40)
        tone.drop(0x40, 0)
        assert not tone.in_flight(0x40)
