"""Tests for MSHRs, write buffers, and memory controllers."""

import pytest

from repro.engine.simulator import Simulator
from repro.mem.memory_controller import MainMemory, MemoryController
from repro.mem.mshr import MshrFile
from repro.mem.write_buffer import WriteBuffer
from repro.stats.collectors import StatsRegistry


class TestMshrFile:
    def test_allocate_and_release(self):
        mshrs = MshrFile(2)
        entry = mshrs.allocate(0x40, is_write=False, now=0)
        assert 0x40 in mshrs
        assert mshrs.get(0x40) is entry
        assert mshrs.release(0x40) is entry
        assert 0x40 not in mshrs

    def test_capacity_tracking(self):
        mshrs = MshrFile(2)
        mshrs.allocate(1, False, 0)
        assert not mshrs.full
        mshrs.allocate(2, False, 0)
        assert mshrs.full
        mshrs.release(1)
        assert not mshrs.full

    def test_waiters_run_in_order(self):
        mshrs = MshrFile(4)
        entry = mshrs.allocate(1, False, 0)
        order = []
        entry.add_waiter(lambda: order.append("a"))
        entry.add_waiter(lambda: order.append("b"))
        entry.complete()
        assert order == ["a", "b"]

    def test_complete_clears_waiters(self):
        mshrs = MshrFile(4)
        entry = mshrs.allocate(1, False, 0)
        count = []
        entry.add_waiter(lambda: count.append(1))
        entry.complete()
        entry.complete()
        assert count == [1]

    def test_outstanding_lines(self):
        mshrs = MshrFile(4)
        mshrs.allocate(5, False, 0)
        mshrs.allocate(9, True, 0)
        assert sorted(mshrs.outstanding_lines()) == [5, 9]


class TestWriteBuffer:
    def test_fifo_order(self):
        buffer = WriteBuffer(4)
        buffer.push(0x10, 1, False, 0)
        buffer.push(0x20, 2, False, 0)
        assert buffer.pop().address == 0x10
        assert buffer.pop().address == 0x20

    def test_capacity(self):
        buffer = WriteBuffer(2)
        buffer.push(1, 0, False, 0)
        assert not buffer.full
        buffer.push(2, 0, False, 0)
        assert buffer.full

    def test_store_to_load_forwarding_returns_youngest(self):
        buffer = WriteBuffer(4)
        buffer.push(0x10, 1, False, 0)
        buffer.push(0x10, 2, False, 1)
        buffer.push(0x18, 9, False, 2)
        assert buffer.forwarded_value(0x10) == 2
        assert buffer.forwarded_value(0x18) == 9
        assert buffer.forwarded_value(0x20) is None

    def test_empty_head(self):
        buffer = WriteBuffer(4)
        assert buffer.empty
        assert buffer.head() is None


class TestMainMemory:
    def test_unwritten_words_read_zero(self):
        memory = MainMemory()
        assert memory.read_word(0x40, 3) == 0
        assert memory.read_line(0x40) == {}

    def test_word_write_read_roundtrip(self):
        memory = MainMemory()
        memory.write_word(0x40, 3, 77)
        assert memory.read_word(0x40, 3) == 77
        assert memory.read_line(0x40) == {3: 77}

    def test_read_line_returns_copy(self):
        memory = MainMemory()
        memory.write_word(0x40, 0, 1)
        snapshot = memory.read_line(0x40)
        snapshot[0] = 999
        assert memory.read_word(0x40, 0) == 1

    def test_write_line_replaces_contents(self):
        memory = MainMemory()
        memory.write_word(0x40, 0, 1)
        memory.write_line(0x40, {5: 50})
        assert memory.read_line(0x40) == {5: 50}


class TestMemoryController:
    def make(self, round_trip=80):
        sim = Simulator()
        memory = MainMemory()
        controller = MemoryController(sim, memory, round_trip, StatsRegistry())
        return sim, memory, controller

    def test_fetch_latency(self):
        sim, memory, controller = self.make()
        memory.write_word(0x40, 0, 11)
        done = []
        controller.fetch_line(0x40, lambda data: done.append((sim.now, data)))
        sim.run()
        assert done == [(80, {0: 11})]

    def test_writeback_then_fetch_sees_new_data(self):
        sim, memory, controller = self.make()
        controller.writeback_line(0x40, {2: 5})
        done = []
        controller.fetch_line(0x40, lambda data: done.append(data))
        sim.run()
        assert done == [{2: 5}]

    def test_requests_serialize_on_the_channel(self):
        sim, _, controller = self.make(round_trip=10)
        times = []
        controller.fetch_line(1, lambda d: times.append(sim.now))
        controller.fetch_line(2, lambda d: times.append(sim.now))
        controller.fetch_line(3, lambda d: times.append(sim.now))
        sim.run()
        assert times == [10, 20, 30]

    def test_writeback_snapshot_taken_at_call(self):
        sim, memory, controller = self.make(round_trip=10)
        data = {0: 1}
        controller.writeback_line(0x40, data)
        data[0] = 999  # mutation after the call must not leak in
        sim.run()
        assert memory.read_word(0x40, 0) == 1

    def test_stats_counters(self):
        sim, _, controller = self.make()
        stats = controller.stats
        controller.fetch_line(1, lambda d: None)
        controller.writeback_line(2, {0: 1})
        sim.run()
        assert stats.get_counter("mem0.reads") == 1
        assert stats.get_counter("mem0.writes") == 1
