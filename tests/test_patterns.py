"""Unit tests for the workload pattern emitters."""

from repro.cpu.trace import OP_BARRIER, OP_LOAD, OP_RMW, OP_STORE, OP_THINK
from repro.engine.rng import DeterministicRng
from repro.workloads.layout import AddressLayout, LOCK_BASE, SHARED_BASE
from repro.workloads.patterns import (
    emit_barrier_episode,
    emit_hot_access,
    emit_lock_section,
    emit_migratory_access,
    emit_shared_access,
    emit_streaming_access,
    emit_think,
)


def make():
    return [], DeterministicRng(7), AddressLayout(16)


class TestThink:
    def test_emits_positive_instruction_burst(self):
        ops, rng, _ = make()
        emit_think(ops, rng, 10)
        assert len(ops) == 1
        assert ops[0].kind == OP_THINK
        assert ops[0].arg >= 1

    def test_zero_mean_emits_nothing(self):
        ops, rng, _ = make()
        emit_think(ops, rng, 0)
        assert ops == []


class TestHotAccess:
    def test_read_and_write_variants(self):
        ops, rng, layout = make()
        emit_hot_access(ops, rng, layout, core=3, hot_words=8, write=False)
        emit_hot_access(ops, rng, layout, core=3, hot_words=8, write=True)
        assert [op.kind for op in ops] == [OP_LOAD, OP_STORE]

    def test_addresses_stay_in_own_region(self):
        ops, rng, layout = make()
        for _ in range(50):
            emit_hot_access(ops, rng, layout, core=2, hot_words=8, write=False)
        low = layout.private_hot(2, 0)
        high = layout.private_hot(2, 7)
        assert all(low <= op.address <= high for op in ops)


class TestStreaming:
    def test_cursor_advances_one_line_per_access(self):
        ops, _rng, layout = make()
        cursor = [0]
        emit_streaming_access(ops, layout, 0, cursor, region_lines=100)
        emit_streaming_access(ops, layout, 0, cursor, region_lines=100)
        assert cursor[0] == 2
        assert ops[1].address - ops[0].address == 64

    def test_wraps_at_region_end(self):
        ops, _rng, layout = make()
        cursor = [99]
        emit_streaming_access(ops, layout, 0, cursor, region_lines=100)
        emit_streaming_access(ops, layout, 0, cursor, region_lines=100)
        assert ops[1].address == layout.private_cold(0, 0)

    def test_streaming_loads_are_non_blocking(self):
        ops, _rng, layout = make()
        emit_streaming_access(ops, layout, 0, [0], region_lines=10)
        assert not ops[0].blocking


class TestSharedAccess:
    def test_burst_emits_requested_count(self):
        ops, rng, layout = make()
        count = emit_shared_access(
            ops, rng, layout, core=0, group_size=8, shared_words=16,
            write_fraction=0.0, burst=4,
        )
        assert count == 4
        assert len(ops) == 4
        assert len({op.address for op in ops}) == 1  # same word re-touched

    def test_at_most_one_write_per_visit(self):
        ops, rng, layout = make()
        visits = 40
        for _ in range(visits):
            burst_ops = []
            emit_shared_access(
                burst_ops, rng, layout, core=0, group_size=8, shared_words=16,
                write_fraction=1.0, burst=3,
            )
            stores_in_visit = sum(1 for op in burst_ops if op.kind == OP_STORE)
            assert stores_in_visit <= 1
            ops.extend(burst_ops)
        # The effective write fraction is clamped at 0.5 even when asked
        # for 1.0, so roughly half the visits write.
        total_stores = sum(1 for op in ops if op.kind == OP_STORE)
        assert 0 < total_stores < visits

    def test_group_write_scaling(self):
        """Wider groups write less often per visit (8/size scaling)."""
        rng_a, rng_b = DeterministicRng(3), DeterministicRng(3)
        layout = AddressLayout(64)
        narrow, wide = [], []
        for _ in range(400):
            emit_shared_access(narrow, rng_a, layout, 0, 8, 16, 0.2, burst=1)
            emit_shared_access(wide, rng_b, layout, 0, 64, 16, 0.2, burst=1)
        narrow_writes = sum(1 for op in narrow if op.kind == OP_STORE)
        wide_writes = sum(1 for op in wide if op.kind == OP_STORE)
        assert wide_writes < narrow_writes

    def test_addresses_in_shared_region(self):
        ops, rng, layout = make()
        emit_shared_access(ops, rng, layout, 0, 8, 16, 0.5, burst=2)
        assert all(op.address >= SHARED_BASE for op in ops)


class TestMigratory:
    def test_read_then_write_pair(self):
        ops, rng, layout = make()
        emit_migratory_access(ops, rng, layout, core=0, token=5, shared_words=8)
        assert [op.kind for op in ops] == [OP_LOAD, OP_STORE]
        assert ops[0].address == ops[1].address


class TestLockSection:
    def test_structure_spins_rmw_critical_release(self):
        ops, rng, layout = make()
        emit_lock_section(ops, rng, layout, lock_id=2, spin_reads=3, critical_ops=4)
        kinds = [op.kind for op in ops]
        assert kinds[:3] == [OP_LOAD] * 3          # spins
        assert kinds[3] == OP_RMW                   # acquire
        assert kinds[-1] == OP_STORE                # release
        assert len(ops) == 3 + 1 + 4 + 1

    def test_critical_data_on_separate_line(self):
        ops, rng, layout = make()
        emit_lock_section(ops, rng, layout, lock_id=0, spin_reads=1, critical_ops=4)
        lock_line = layout.lock(0) // 64
        for op in ops[2:-1]:  # the critical-section accesses
            assert op.address // 64 != lock_line

    def test_lock_addresses_in_lock_region(self):
        ops, rng, layout = make()
        emit_lock_section(ops, rng, layout, lock_id=3, spin_reads=2, critical_ops=1)
        assert all(op.address >= LOCK_BASE for op in ops)


class TestBarrierEpisode:
    def test_rmw_spins_then_alignment(self):
        ops, _rng, layout = make()
        emit_barrier_episode(ops, layout, phase=2, spin_reads=3)
        kinds = [op.kind for op in ops]
        assert kinds[0] == OP_RMW
        assert kinds[1:4] == [OP_LOAD] * 3
        assert kinds[4] == OP_BARRIER
        assert ops[4].arg == 2

    def test_distinct_phases_use_distinct_lines(self):
        ops, _rng, layout = make()
        emit_barrier_episode(ops, layout, phase=0, spin_reads=0)
        emit_barrier_episode(ops, layout, phase=1, spin_reads=0)
        assert ops[0].address // 64 != ops[2].address // 64
