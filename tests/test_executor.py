"""Tests for the parallel experiment executor and its memo cache.

The repo's core contract is determinism: the executor must produce
byte-identical ``SimulationResult.to_dict()`` payloads no matter whether a
run was simulated serially, in a worker pool, or recalled from the on-disk
cache.
"""

import json

import pytest

from repro.config.presets import baseline_config, widir_config
from repro.harness.executor import (
    CACHE_SCHEMA_VERSION,
    Executor,
    ExperimentPlan,
    RunRequest,
    run_key,
)
from repro.harness.runner import SimulationResult, run_pair

APPS = ("radiosity", "blackscholes")
CORES = 8
MEMOPS = 150


def _pair_plan():
    plan = ExperimentPlan()
    indices = [plan.add_pair(app, num_cores=CORES, memops=MEMOPS) for app in APPS]
    return plan, indices


def _canonical(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


class TestRunKey:
    def test_key_is_stable(self):
        a = RunRequest("fft", widir_config(num_cores=8), 200, 0)
        b = RunRequest("fft", widir_config(num_cores=8), 200, 0)
        assert run_key(a) == run_key(b)

    def test_key_covers_every_dimension(self):
        base = RunRequest("fft", widir_config(num_cores=8), 200, 0)
        variants = [
            RunRequest("lu-c", widir_config(num_cores=8), 200, 0),
            RunRequest("fft", widir_config(num_cores=16), 200, 0),
            RunRequest("fft", widir_config(num_cores=8, max_wired_sharers=4), 200, 0),
            RunRequest("fft", widir_config(num_cores=8, seed=7), 200, 0),
            RunRequest("fft", baseline_config(num_cores=8), 200, 0),
            RunRequest("fft", widir_config(num_cores=8), 300, 0),
            RunRequest("fft", widir_config(num_cores=8), 200, 1),
        ]
        keys = {run_key(v) for v in variants}
        assert run_key(base) not in keys
        assert len(keys) == len(variants)

    def test_key_includes_schema_version(self):
        request = RunRequest("fft", widir_config(num_cores=8), 200, 0)
        assert request.canonical()["schema"] == CACHE_SCHEMA_VERSION


class TestDeterminism:
    def test_parallel_matches_serial_byte_identically(self, tmp_path):
        """ISSUE satellite: Executor(workers=4) == serial, byte for byte."""
        serial = Executor(workers=1, cache_dir=tmp_path / "s", use_cache=False)
        parallel = Executor(workers=4, cache_dir=tmp_path / "p", use_cache=False)
        plan_a, _ = _pair_plan()
        plan_b, _ = _pair_plan()
        assert _canonical(serial.map_runs(plan_a)) == _canonical(
            parallel.map_runs(plan_b)
        )
        assert serial.stats.executed == parallel.stats.executed == 4

    def test_executor_matches_plain_run_pair(self, tmp_path):
        exe = Executor(workers=4, cache_dir=tmp_path, use_cache=False)
        for app in APPS:
            direct = run_pair(app, num_cores=CORES, memops_per_core=MEMOPS)
            via_exe = exe.run_pair(app, num_cores=CORES, memops_per_core=MEMOPS)
            assert _canonical(direct) == _canonical(via_exe)

    def test_cached_results_byte_identical_to_fresh(self, tmp_path):
        exe = Executor(workers=1, cache_dir=tmp_path, use_cache=True)
        plan_a, _ = _pair_plan()
        fresh = _canonical(exe.map_runs(plan_a))
        plan_b, _ = _pair_plan()
        warm = _canonical(exe.map_runs(plan_b))
        assert fresh == warm


class TestMemoization:
    def test_warm_cache_short_circuits(self, tmp_path):
        """ISSUE satellite: a second identical plan executes 0 simulations."""
        exe = Executor(workers=1, cache_dir=tmp_path, use_cache=True)
        plan_a, _ = _pair_plan()
        exe.map_runs(plan_a)
        executed_cold = exe.stats.executed
        assert executed_cold == 4
        plan_b, _ = _pair_plan()
        exe.map_runs(plan_b)
        assert exe.stats.executed == executed_cold  # nothing re-simulated
        assert exe.stats.cache_hits == 4
        assert exe.stats.hit_rate == pytest.approx(0.5)

    def test_duplicate_requests_deduplicated_before_dispatch(self, tmp_path):
        exe = Executor(workers=1, cache_dir=tmp_path, use_cache=False)
        plan = ExperimentPlan()
        config = widir_config(num_cores=CORES)
        first = plan.add(APPS[0], config, MEMOPS)
        second = plan.add(APPS[0], config, MEMOPS)  # identical request
        results = exe.map_runs(plan)
        assert exe.stats.executed == 1
        assert exe.stats.deduplicated == 1
        assert _canonical([results[first]]) == _canonical([results[second]])

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        exe = Executor(workers=1, cache_dir=tmp_path, use_cache=True)
        request = RunRequest(APPS[0], widir_config(num_cores=CORES), MEMOPS, 0)
        (tmp_path / f"{run_key(request)}.json").write_text("{truncated")
        plan = ExperimentPlan()
        plan.add(APPS[0], widir_config(num_cores=CORES), MEMOPS)
        exe.map_runs(plan)
        assert exe.stats.executed == 1
        assert exe.stats.cache_hits == 0

    def test_prune_cache_removes_entries(self, tmp_path):
        exe = Executor(workers=1, cache_dir=tmp_path, use_cache=True)
        plan, _ = _pair_plan()
        exe.map_runs(plan)
        assert exe.prune_cache() == 4
        assert list(tmp_path.glob("*.json")) == []


class TestSerialization:
    def test_result_roundtrip_is_byte_identical(self, tmp_path):
        exe = Executor(workers=1, cache_dir=tmp_path, use_cache=False)
        result = exe.run(APPS[0], widir_config(num_cores=CORES), MEMOPS)
        payload = result.to_dict()
        restored = SimulationResult.from_dict(payload)
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            restored.to_dict(), sort_keys=True
        )
        assert restored.config == result.config
        assert restored.mpki == result.mpki

    def test_config_roundtrip_exact(self):
        config = widir_config(num_cores=16, max_wired_sharers=4, seed=9)
        assert type(config).from_dict(config.to_dict()) == config


class TestFiguresThroughExecutor:
    def test_figures_share_cache_across_artifacts(self, tmp_path):
        """fig6 and fig7 declare the same pairs: second figure is all hits."""
        from repro.harness.figures import figure6_mpki, figure7_memory_latency

        exe = Executor(workers=1, cache_dir=tmp_path, use_cache=True)
        figure6_mpki(apps=APPS, num_cores=CORES, memops=MEMOPS, executor=exe)
        executed_after_fig6 = exe.stats.executed
        assert executed_after_fig6 == 4
        figure7_memory_latency(
            apps=APPS, num_cores=CORES, memops=MEMOPS, executor=exe
        )
        assert exe.stats.executed == executed_after_fig6

    def test_figure_rows_identical_serial_vs_parallel(self, tmp_path):
        from repro.harness.figures import figure6_mpki

        serial = figure6_mpki(
            apps=APPS,
            num_cores=CORES,
            memops=MEMOPS,
            executor=Executor(workers=1, cache_dir=tmp_path / "s", use_cache=False),
        )
        parallel = figure6_mpki(
            apps=APPS,
            num_cores=CORES,
            memops=MEMOPS,
            executor=Executor(workers=4, cache_dir=tmp_path / "p", use_cache=False),
        )
        assert serial.rows == parallel.rows
        assert serial.text == parallel.text
