"""Canonical trace-file format: round-trip, integrity, and converters.

The hypothesis property is the core contract: *any* per-core op stream
written through :class:`TraceWriter` comes back from
:class:`TraceReader` column-for-column identical — kinds re-interned,
chunk boundaries invisible to the consumer. The corruption tests lock
the failure side: a truncated file or a flipped payload byte must raise
:class:`TraceCorruptionError`/:class:`TraceFormatError`, never return
wrong records.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.trace import (
    OP_BARRIER,
    OP_LOAD,
    OP_RMW,
    OP_STORE,
    OP_THINK,
    TraceChunk,
)
from repro.traces.format import (
    MAGIC,
    RECORD_BYTES,
    TraceCorruptionError,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    available_codec,
    chunk_to_records,
    records_to_chunk,
    trace_info,
    validate_trace,
)
from repro.traces.record import convert_csv, record_app_trace

KINDS = (OP_THINK, OP_LOAD, OP_STORE, OP_RMW, OP_BARRIER)

#: One op: (kind, address, value, arg, blocking). Bounds match the
#: signed-64-bit record fields.
op_strategy = st.tuples(
    st.sampled_from(KINDS),
    st.integers(min_value=0, max_value=2**62),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.integers(min_value=0, max_value=2**62),
    st.booleans(),
)

streams_strategy = st.lists(  # one list of ops per core
    st.lists(op_strategy, max_size=60), min_size=1, max_size=4
)


def _write_streams(path, streams, chunk_records=16, codec=None):
    with TraceWriter(
        path, num_cores=len(streams), chunk_records=chunk_records, codec=codec
    ) as writer:
        for core, ops in enumerate(streams):
            for kind, address, value, arg, blocking in ops:
                writer.append_op(core, kind, address, value, arg, blocking)
    return writer


def _read_streams(path):
    streams = []
    with TraceReader(path) as reader:
        for core in range(reader.num_cores):
            ops = []
            for chunk in reader.iter_core(core):
                for i, kind in enumerate(chunk.kinds):
                    ops.append(
                        (
                            kind,
                            chunk.addresses[i],
                            chunk.values[i],
                            chunk.args[i],
                            chunk.blocking[i],
                        )
                    )
            streams.append(ops)
    return streams


# ----------------------------------------------------------- round trips


@settings(max_examples=40, deadline=None)
@given(streams=streams_strategy, chunk_records=st.integers(1, 32))
def test_roundtrip_property(tmp_path_factory, streams, chunk_records):
    """Write → read returns every op of every core, in order, exactly."""
    path = tmp_path_factory.mktemp("wtr") / "trace.wtr"
    writer = _write_streams(path, streams, chunk_records=chunk_records)
    assert writer.trace_id  # content digest populated on close
    assert _read_streams(path) == streams


def test_roundtrip_reinterns_kinds(tmp_path):
    """Round-tripped kinds are the module constants (pointer-comparable)."""
    path = tmp_path / "t.wtr"
    _write_streams(path, [[(OP_LOAD, 64, 0, 0, True), (OP_BARRIER, 0, 0, 0, True)]])
    with TraceReader(path) as reader:
        chunk = reader.read_chunk(0, 0)
    assert chunk.kinds[0] is OP_LOAD
    assert chunk.kinds[1] is OP_BARRIER


def test_record_codec_rejects_ragged_payload():
    with pytest.raises(TraceCorruptionError):
        records_to_chunk(b"\x00" * (RECORD_BYTES + 1))


def test_record_codec_rejects_unknown_kind():
    chunk = TraceChunk()
    chunk.kinds.append(OP_LOAD)
    chunk.addresses.append(0)
    chunk.values.append(0)
    chunk.args.append(0)
    chunk.blocking.append(True)
    raw = bytearray(chunk_to_records(chunk))
    raw[0] = 250  # kind code far outside the table
    with pytest.raises(TraceCorruptionError):
        records_to_chunk(bytes(raw))


def test_explicit_zlib_codec_roundtrips(tmp_path):
    path = tmp_path / "t.wtr"
    streams = [[(OP_STORE, 128 * i, i, 0, True) for i in range(50)]]
    _write_streams(path, streams, codec="zlib")
    assert _read_streams(path) == streams
    assert trace_info(path)["codec"] == "zlib"


def test_available_codec_is_known():
    assert available_codec() in ("zstd", "zlib")


# --------------------------------------------------------- index metadata


def test_index_chunking_and_barrier_counts(tmp_path):
    path = tmp_path / "t.wtr"
    ops = []
    for i in range(10):
        ops.append((OP_LOAD, 64 * i, 0, 0, True))
        ops.append((OP_BARRIER, 0, 0, 0, True))
    _write_streams(path, [ops], chunk_records=4)  # 20 records -> 5 chunks
    with TraceReader(path) as reader:
        assert reader.num_chunks(0) == 5
        assert [reader.chunk_length(0, i) for i in range(5)] == [4] * 5
        assert reader.barrier_counts(0) == [2, 4, 6, 8, 10]
        assert reader.total_records == 20
        with pytest.raises(TraceFormatError):
            reader.chunk_length(0, 5)
        with pytest.raises(TraceFormatError):
            reader.read_chunk(1, 0)


def test_trace_info_and_validate(tmp_path):
    path = tmp_path / "t.wtr"
    info = record_app_trace(path, "radix", 4, 120, trace_seed=3, chunk_records=32)
    assert info["app"] == "radix"
    assert info["num_cores"] == 4
    assert info["records"] == sum(info["records_per_core"])
    assert info["trace_id"]
    assert info["metadata"]["memops_per_core"] == 120
    assert info["compression_ratio"] > 0
    report = validate_trace(path)
    assert report["ok"] is True
    assert report["records"] == info["records"]
    assert report["trace_id"] == info["trace_id"]


def test_trace_id_is_content_addressed(tmp_path):
    """Same stream → same id regardless of path; different stream differs."""
    streams = [[(OP_LOAD, 64, 0, 0, True)], [(OP_STORE, 128, 1, 0, True)]]
    a = _write_streams(tmp_path / "a.wtr", streams)
    b = _write_streams(tmp_path / "b.wtr", streams)
    assert a.trace_id == b.trace_id
    c = _write_streams(tmp_path / "c.wtr", list(reversed(streams)))
    assert c.trace_id != a.trace_id


# ------------------------------------------------------------- corruption


def _record_small(path):
    record_app_trace(path, "radix", 2, 80, trace_seed=1, chunk_records=16)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "t.wtr"
    _record_small(path)
    data = path.read_bytes()
    for keep in (len(data) - 1, len(data) // 2, 10):
        clipped = tmp_path / f"clip{keep}.wtr"
        clipped.write_bytes(data[:keep])
        with pytest.raises(TraceFormatError):
            with TraceReader(clipped) as reader:
                validate_trace(clipped)


def test_corrupt_payload_byte_rejected(tmp_path):
    path = tmp_path / "t.wtr"
    _record_small(path)
    data = bytearray(path.read_bytes())
    # Flip a byte inside the first chunk's compressed payload (the chunk
    # frames start right after MAGIC + header; corrupt well past that).
    header_len = struct.unpack("<I", bytes(data[len(MAGIC):len(MAGIC) + 4]))[0]
    target = len(MAGIC) + 4 + header_len + 40
    data[target] ^= 0xFF
    bad = tmp_path / "bad.wtr"
    bad.write_bytes(bytes(data))
    with pytest.raises(TraceCorruptionError):
        validate_trace(bad)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "not-a-trace.wtr"
    path.write_bytes(b"definitely not a trace file" * 4)
    with pytest.raises(TraceFormatError):
        TraceReader(path)


# ----------------------------------------------------------------- writer


def test_writer_is_atomic_on_abort(tmp_path):
    path = tmp_path / "t.wtr"
    writer = TraceWriter(path, num_cores=1)
    writer.append_op(0, OP_LOAD, 64)
    writer.abort()
    assert not path.exists()
    assert not list(tmp_path.iterdir())  # tmp file cleaned up too


def test_writer_rejects_bad_input(tmp_path):
    writer = TraceWriter(tmp_path / "t.wtr", num_cores=2)
    try:
        with pytest.raises(ValueError):
            writer.append_op(2, OP_LOAD)
        with pytest.raises(TraceFormatError):
            writer.append_op(0, "teleport")
    finally:
        writer.abort()
    with pytest.raises(ValueError):
        TraceWriter(tmp_path / "u.wtr", num_cores=0)
    with pytest.raises(ValueError):
        TraceWriter(tmp_path / "v.wtr", num_cores=1, chunk_records=0)


# -------------------------------------------------------------- converter


def test_convert_csv_roundtrip(tmp_path):
    src = tmp_path / "ops.csv"
    src.write_text(
        "# comment then ops\n"
        "0,load,0x40\n"
        "0,store,64,7,0,1\n"
        "1,think,0,0,12\n"
        "0,barrier\n"
        "1,barrier\n"
    )
    out = tmp_path / "ops.wtr"
    info = convert_csv(src, out, app="imported-test")
    assert info["num_cores"] == 2
    assert info["records"] == 5
    assert info["app"] == "imported-test"
    streams = _read_streams(out)
    assert streams[0] == [
        (OP_LOAD, 0x40, 0, 0, True),
        (OP_STORE, 64, 7, 0, True),
        (OP_BARRIER, 0, 0, 0, True),
    ]
    assert streams[1] == [
        (OP_THINK, 0, 0, 12, True),
        (OP_BARRIER, 0, 0, 0, True),
    ]


def test_convert_csv_rejects_bad_rows(tmp_path):
    out = tmp_path / "out.wtr"
    bad_kind = tmp_path / "k.csv"
    bad_kind.write_text("0,teleport,64\n")
    with pytest.raises(TraceFormatError):
        convert_csv(bad_kind, out)
    bad_int = tmp_path / "i.csv"
    bad_int.write_text("0,load,sixty-four\n")
    with pytest.raises(TraceFormatError):
        convert_csv(bad_int, out)
    assert not out.exists()  # converter aborts, no partial file
