"""Tests for the Dir_i_CV_r coarse-vector directory overflow scheme."""

from dataclasses import replace

import pytest

from repro.config import baseline_config, widir_config
from repro.config.system import DirectoryConfig
from repro.engine.errors import ConfigurationError
from repro.coherence.directory import DirectoryEntry
from repro.system import Manycore

ADDR = 0x0004_0000


def coarse_config(cores=16, region=4, protocol="baseline"):
    make = widir_config if protocol == "widir" else baseline_config
    config = make(num_cores=cores)
    return replace(
        config,
        directory=replace(
            config.directory, scheme="DirCV", coarse_region_size=region
        ),
    )


def do_load(machine, core, address=ADDR):
    out = []
    machine.caches[core].load(address, out.append)
    machine.run(max_events=20_000_000)
    return out[0]


def do_store(machine, core, value, address=ADDR):
    done = []
    machine.caches[core].store(address, value, lambda: done.append(True))
    machine.run(max_events=20_000_000)
    assert done


def dir_entry(machine, address=ADDR):
    line = machine.amap.line_of(address)
    return machine.directories[machine.amap.home_of(line)].array.lookup(
        line, touch=False
    )


class TestEntrySemantics:
    def test_coarse_regions_expand_to_cores(self):
        entry = DirectoryEntry(0x40)
        entry.coarse_regions = {0, 3}
        targets = entry.known_sharers(16, coarse_region_size=4)
        assert targets == [0, 1, 2, 3, 12, 13, 14, 15]

    def test_coarse_regions_clamp_to_machine(self):
        entry = DirectoryEntry(0x40)
        entry.coarse_regions = {1}
        targets = entry.known_sharers(6, coarse_region_size=4)
        assert targets == [4, 5]

    def test_exclude_applies_to_coarse_targets(self):
        entry = DirectoryEntry(0x40)
        entry.coarse_regions = {0}
        assert entry.known_sharers(8, exclude=1, coarse_region_size=4) == [0, 2, 3]

    def test_broadcast_takes_precedence(self):
        entry = DirectoryEntry(0x40)
        entry.broadcast = True
        entry.coarse_regions = {0}
        assert entry.known_sharers(8, coarse_region_size=4) == list(range(8))

    def test_clear_imprecision_resets_both(self):
        entry = DirectoryEntry(0x40)
        entry.broadcast = True
        entry.coarse_regions = {1, 2}
        entry.clear_imprecision()
        assert not entry.broadcast
        assert not entry.coarse_regions


class TestConfig:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            DirectoryConfig(scheme="DirMagic").validate()

    def test_coarse_region_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            DirectoryConfig(scheme="DirCV", coarse_region_size=0).validate()

    def test_coarse_config_builds(self):
        coarse_config().validate()


class TestProtocolBehaviour:
    def test_overflow_populates_regions_not_broadcast(self):
        machine = Manycore(coarse_config(cores=16, region=4))
        for core in (0, 1, 5, 9, 13):  # 5 sharers > 3 pointers
            do_load(machine, core)
        entry = dir_entry(machine)
        assert not entry.broadcast
        assert entry.coarse_regions == {0, 1, 2, 3}

    def test_invalidation_targets_marked_regions_only(self):
        machine = Manycore(coarse_config(cores=16, region=4))
        for core in (0, 1, 2, 3, 5):  # regions 0 and 1 only
            do_load(machine, core)
        entry = dir_entry(machine)
        assert entry.coarse_regions == {0, 1}
        before = machine.stats.get_counter("dir.total.invalidations_sent")
        do_store(machine, 0, 42)
        sent = machine.stats.get_counter("dir.total.invalidations_sent") - before
        # 8 region cores minus the requester — not the whole 16-core machine.
        assert sent == 7
        machine.check_coherence()

    def test_correctness_matches_dir_b(self):
        """Both overflow schemes must compute identical values."""
        for config in (
            baseline_config(num_cores=16),
            coarse_config(cores=16, region=4),
        ):
            machine = Manycore(config)
            for core in range(8):
                do_load(machine, core)
            do_store(machine, 3, 999)
            for core in range(8):
                assert do_load(machine, core) == 999
            machine.check_coherence()

    def test_coarse_vector_with_widir_protocol(self):
        """The paper: WiDir adapts to Dir_i_CV_r as well (Section III-B)."""
        machine = Manycore(coarse_config(cores=16, region=4, protocol="widir"))
        for core in range(5):
            do_load(machine, core)
        entry = dir_entry(machine)
        assert entry.state == "W"  # the threshold fires before overflow
        do_store(machine, 0, 31)
        assert do_load(machine, 4) == 31
        machine.check_coherence()

    def test_regions_cleared_after_exclusive_grant(self):
        machine = Manycore(coarse_config(cores=16, region=4))
        for core in (0, 4, 8, 12):
            do_load(machine, core)
        assert dir_entry(machine).coarse_regions
        do_store(machine, 0, 1)
        entry = dir_entry(machine)
        assert entry.state == "E"
        assert not entry.coarse_regions
