"""Property tests over the trace generator across all 20 profiles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.trace import OP_BARRIER, OP_LOAD, OP_RMW, OP_STORE, OP_THINK
from repro.workloads.generator import build_core_trace
from repro.workloads.layout import LOCK_BASE, PRIVATE_BASE, SHARED_BASE
from repro.workloads.profiles import ALL_APPS, APP_PROFILES

MEMOP_KINDS = (OP_LOAD, OP_STORE, OP_RMW)


@settings(max_examples=30, deadline=None)
@given(
    app=st.sampled_from(ALL_APPS),
    core=st.integers(0, 15),
    seed=st.integers(0, 500),
)
def test_property_trace_wellformed(app, core, seed):
    """Structural invariants that must hold for every profile/core/seed."""
    profile = APP_PROFILES[app]
    trace = build_core_trace(profile, core, 16, 300, seed)

    # 1. Non-empty, ends after the final barrier phase.
    assert trace
    barrier_ids = [op.arg for op in trace if op.kind == OP_BARRIER]
    assert barrier_ids == list(range(max(1, profile.phases)))

    # 2. Addresses are word-aligned and land in known regions.
    for op in trace:
        if op.kind in MEMOP_KINDS:
            assert op.address % 8 == 0
            assert op.address >= PRIVATE_BASE

    # 3. Think bursts are positive instruction counts.
    for op in trace:
        if op.kind == OP_THINK:
            assert op.arg >= 1

    # 4. Atomics target synchronization lines only.
    for op in trace:
        if op.kind == OP_RMW:
            assert op.address >= LOCK_BASE

    # 5. Private accesses stay inside this core's own span.
    span_low = PRIVATE_BASE + core * 0x10_0000
    span_high = span_low + 0x10_0000
    for op in trace:
        if op.kind in MEMOP_KINDS and op.address < SHARED_BASE:
            assert span_low <= op.address < span_high


@settings(max_examples=15, deadline=None)
@given(app=st.sampled_from(ALL_APPS), seed=st.integers(0, 100))
def test_property_determinism_per_inputs(app, seed):
    profile = APP_PROFILES[app]
    a = build_core_trace(profile, 1, 8, 120, seed)
    b = build_core_trace(profile, 1, 8, 120, seed)
    assert len(a) == len(b)
    assert all(
        (x.kind, x.address, x.value, x.arg, x.blocking)
        == (y.kind, y.address, y.value, y.arg, y.blocking)
        for x, y in zip(a, b)
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100))
def test_property_sync_loads_always_blocking(seed):
    """Shared/lock/barrier loads are blocking (use-dependent) by design."""
    trace = build_core_trace(APP_PROFILES["radiosity"], 0, 16, 300, seed)
    for op in trace:
        if op.kind == OP_LOAD and op.address >= SHARED_BASE:
            assert op.blocking


@pytest.mark.parametrize("app", ALL_APPS)
def test_every_profile_generates_and_scales(app):
    """Every one of the paper's 20 profiles generates at 2 machine sizes."""
    profile = APP_PROFILES[app]
    for cores in (4, 64):
        trace = build_core_trace(profile, cores - 1, cores, 200, 0)
        memops = sum(1 for op in trace if op.kind in MEMOP_KINDS)
        assert memops >= 200
