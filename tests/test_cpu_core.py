"""Tests for the trace-driven core model against a mock cache."""

from typing import Callable, Dict, List

import pytest

from repro.config import paper_config
from repro.cpu.core import Core
from repro.cpu.sync import PhaseBarrier
from repro.cpu import trace as t
from repro.engine.simulator import Simulator
from repro.stats.collectors import StatsRegistry


class MockCache:
    """Deterministic cache stub with a programmable per-line latency."""

    def __init__(self, sim: Simulator, latency: int = 2) -> None:
        self.sim = sim
        self.latency = latency
        self.latency_of: Dict[int, int] = {}
        self.values: Dict[int, int] = {}
        self.calls: List[str] = []

    def _delay(self, address: int) -> int:
        return self.latency_of.get(address >> 6, self.latency)

    def load(self, address: int, on_done: Callable[[int], None]) -> None:
        self.calls.append("load")
        value = self.values.get(address, 0)
        self.sim.schedule(self._delay(address), lambda: on_done(value))

    def store(self, address: int, value: int, on_done: Callable[[], None]) -> None:
        self.calls.append("store")
        self.values[address] = value
        self.sim.schedule(self._delay(address), on_done)

    def rmw(self, address: int, on_done: Callable[[int], None]) -> None:
        self.calls.append("rmw")
        old = self.values.get(address, 0)
        self.values[address] = old + 1
        self.sim.schedule(self._delay(address), lambda: on_done(old))


def run_core(trace, latency=2, config=None, barrier=None, node=0, sim=None):
    sim = sim or Simulator()
    cache = MockCache(sim, latency)
    config = config or paper_config(num_cores=4)
    core = Core(sim, node, cache, config, StatsRegistry(), barrier)
    core.run_trace(trace)
    sim.run()
    assert core.finished
    return core, cache, sim


class TestExecution:
    def test_think_advances_clock_at_issue_width(self):
        core, _, sim = run_core([t.think(40)])
        # 40 instructions at 4-wide = 10 cycles.
        assert core.result.finish_cycle == 10
        assert core.result.instructions == 40

    def test_loads_and_stores_counted_as_instructions(self):
        core, cache, _ = run_core([t.load(0x100), t.store(0x108, 5)])
        assert core.result.instructions == 2
        assert cache.calls == ["load", "store"]

    def test_empty_trace_finishes_immediately(self):
        core, _, sim = run_core([])
        assert core.finished
        assert core.result.finish_cycle == 0

    def test_rmw_values_flow_through_mock(self):
        core, cache, _ = run_core([t.rmw(0x40), t.rmw(0x40)])
        assert cache.values[0x40] == 2


class TestStallAccounting:
    def test_l1_hits_do_not_stall(self):
        """Blocking loads at hit latency are hidden by the grace window."""
        core, _, _ = run_core([t.load(0x100), t.load(0x108)], latency=2)
        assert core.result.memory_stall_cycles == 0

    def test_long_latency_blocking_load_stalls(self):
        core, _, _ = run_core([t.load(0x100)], latency=50)
        # 50 cycles minus the 2-cycle hit grace.
        assert core.result.memory_stall_cycles == 48

    def test_nonblocking_loads_overlap(self):
        trace = [t.load(0x100, blocking=False), t.think(400)]
        core, _, _ = run_core(trace, latency=50)
        assert core.result.memory_stall_cycles == 0
        assert core.result.finish_cycle == 100  # dominated by think time

    def test_load_latency_recorded_even_when_overlapped(self):
        trace = [t.load(0x100, blocking=False), t.think(400)]
        core, _, _ = run_core(trace, latency=50)
        assert core.result.load_latency.count == 1
        assert core.result.load_latency.total == 50

    def test_mlp_limit_throttles_outstanding_loads(self):
        config = paper_config(num_cores=4)
        many_loads = [t.load(0x1000 + 64 * i, blocking=False) for i in range(16)]
        core, _, _ = run_core(many_loads, latency=30, config=config)
        # 16 loads, 8 at a time, 30 cycles each: at least two waves.
        assert core.result.finish_cycle >= 60
        assert core.result.memory_stall_cycles > 0

    def test_store_buffer_hides_store_latency(self):
        trace = [t.store(0x100, 1), t.think(400)]
        core, _, _ = run_core(trace, latency=50)
        assert core.result.memory_stall_cycles == 0

    def test_rmw_blocks_until_complete(self):
        core, _, _ = run_core([t.rmw(0x100)], latency=50)
        assert core.result.memory_stall_cycles == 50

    def test_rmw_drains_older_stores_first(self):
        """The atomic must wait for the write buffer to drain."""
        trace = [t.store(0x100, 1), t.rmw(0x200)]
        core, cache, _ = run_core(trace, latency=10)
        assert cache.calls == ["store", "rmw"]
        assert core.result.memory_stall_cycles >= 10  # drained the store


class TestBarriers:
    def test_cores_align_at_barrier(self):
        sim = Simulator()
        config = paper_config(num_cores=2)
        barrier = PhaseBarrier(2)
        caches = [MockCache(sim, 2), MockCache(sim, 2)]
        cores = [
            Core(sim, n, caches[n], config, StatsRegistry(), barrier)
            for n in range(2)
        ]
        cores[0].run_trace([t.think(400), t.barrier(0)])
        cores[1].run_trace([t.barrier(0)])
        sim.run()
        # Core 1 waited ~100 cycles for core 0.
        assert cores[1].result.sync_stall_cycles >= 99
        assert cores[0].result.sync_stall_cycles == 0

    def test_barrier_ignored_without_coordinator(self):
        core, _, _ = run_core([t.barrier(0), t.think(4)], barrier=None)
        assert core.result.finish_cycle == 1

    def test_sync_stall_separate_from_memory_stall(self):
        sim = Simulator()
        config = paper_config(num_cores=2)
        barrier = PhaseBarrier(2)
        caches = [MockCache(sim, 50), MockCache(sim, 2)]
        cores = [
            Core(sim, n, caches[n], config, StatsRegistry(), barrier)
            for n in range(2)
        ]
        cores[0].run_trace([t.load(0x100), t.barrier(0)])
        cores[1].run_trace([t.barrier(0)])
        sim.run()
        assert cores[0].result.memory_stall_cycles == 48
        assert cores[1].result.sync_stall_cycles > 0


class TestTraceHelpers:
    def test_count_instructions(self):
        trace = [t.think(10), t.load(0), t.store(0, 1), t.rmw(0), t.barrier(0)]
        assert t.count_instructions(trace) == 13

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            t.TraceOp("jump")
