"""Property fuzzing of the wireless channel.

Random interleavings of transmissions, cancellations, and jam/unjam
windows must preserve the channel's contract: every non-cancelled frame is
delivered exactly once, no two successful frames overlap in time, and the
medium never deadlocks while an unjammed frame is pending.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config.system import WirelessConfig
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.stats.collectors import StatsRegistry
from repro.wireless.channel import WirelessDataChannel
from repro.wireless.frames import WirelessFrame

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (at_cycle, node, line_index, action) where action selects transmit /
#: transmit-then-cancel / jam window toggling.
EVENTS = st.lists(
    st.tuples(
        st.integers(0, 400),
        st.integers(0, 7),
        st.integers(0, 3),
        st.sampled_from(["send", "send_cancel", "jam", "unjam"]),
    ),
    min_size=1,
    max_size=60,
)


@SETTINGS
@given(events=EVENTS, seed=st.integers(0, 1000))
def test_property_exactly_once_delivery_and_liveness(events, seed):
    sim = Simulator(seed)
    config = WirelessConfig()
    channel = WirelessDataChannel(
        sim, config, 8, StatsRegistry(), DeterministicRng(seed)
    )
    delivered = []
    channel.register_receiver(0, lambda f: delivered.append(f.value))

    sent = []
    cancelled = []
    jam_state = {}
    token = iter(range(10_000))

    def do(at, node, line_index, action):
        line = 0x100 + line_index

        def run():
            if action in ("send", "send_cancel"):
                value = next(token)
                request = channel.transmit(
                    WirelessFrame("WirUpd", node, line, 0, value)
                )
                if action == "send_cancel":
                    if request.cancel():
                        cancelled.append(value)
                    else:
                        sent.append(value)
                else:
                    sent.append(value)
            elif action == "jam":
                # Jams are refcounted (nest): the model counts them so the
                # final lift below releases every level.
                jam_state[line] = jam_state.get(line, 0) + 1
                channel.jam(line)
            else:
                if jam_state.get(line, 0) > 1:
                    jam_state[line] -= 1
                else:
                    jam_state.pop(line, None)
                channel.unjam(line)

        sim.schedule_at(max(at, sim.now) if at >= sim.now else sim.now, run)

    for at, node, line_index, action in sorted(events):
        do(at, node, line_index, action)

    sim.run(until=100_000, max_events=2_000_000)
    # Lift any jam still standing — every nested level — so pending frames
    # can drain (liveness).
    for line, count in list(jam_state.items()):
        for _ in range(count):
            channel.unjam(line)
    sim.run(max_events=2_000_000)

    assert sorted(delivered) == sorted(sent), "exactly-once delivery violated"
    assert not set(delivered) & set(cancelled), "cancelled frame delivered"
    assert channel.idle, "channel left with stuck pending frames"


@SETTINGS
@given(
    senders=st.integers(2, 8),
    frames_per_sender=st.integers(1, 10),
    seed=st.integers(0, 500),
)
def test_property_no_overlapping_successes(senders, frames_per_sender, seed):
    sim = Simulator(seed)
    config = WirelessConfig()
    channel = WirelessDataChannel(
        sim, config, senders, StatsRegistry(), DeterministicRng(seed)
    )
    channel.register_receiver(0, lambda f: None)
    spans = []

    def track(request_value):
        start_holder = {}

        def on_commit():
            start_holder["start"] = sim.now - 2

        def on_delivered():
            spans.append((start_holder["start"], sim.now))

        return on_commit, on_delivered

    for node in range(senders):
        for i in range(frames_per_sender):
            commit_cb, done_cb = track(node * 100 + i)
            sim.schedule(
                i,  # all senders contend at the start
                lambda n=node, i=i, c=commit_cb, d=done_cb: channel.transmit(
                    WirelessFrame("WirUpd", n, 0x200, 0, n * 100 + i), c, d
                ),
            )
    sim.run(max_events=2_000_000)
    assert len(spans) == senders * frames_per_sender
    spans.sort()
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2, f"overlap: ({s1},{e1}) vs ({s2},{e2})"
