"""Fault-tolerance tests: crash-safe IO, supervised retries, campaign resume.

The contract under test (ISSUE 5): a campaign interrupted at *any* point —
worker crash, hang, timeout, or SIGKILL of the whole process — resumes
exactly where it died and converges to an aggregate ``results.json`` /
``digest.txt`` that is byte-identical to an uninterrupted execution, while
runs that exhaust their retries degrade into an explicit provenance
manifest instead of aborting the sweep.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.campaign import (
    CHECKPOINT_SCHEMA_VERSION,
    Campaign,
    CampaignError,
    CampaignResultSource,
    CampaignSpec,
    run_campaign,
)
from repro.harness.executor import Executor, ExperimentPlan, run_key
from repro.harness.figures import figure6_mpki
from repro.harness.ioutils import (
    append_jsonl,
    atomic_write_json,
    iter_stale_tmp,
    quarantine,
    read_jsonl,
)
from repro.harness.supervisor import (
    RetryPolicy,
    ScriptedFaults,
    SeededFaults,
    WorkerSupervisor,
)
from repro.obs.campaign import CampaignTelemetry

APP = "volrend"
CORES = 4
MEMOPS = 120

REPO_ROOT = Path(__file__).resolve().parent.parent


def _spec(name="t", **overrides):
    defaults = dict(
        name=name, kind="protocols", apps=(APP,), cores=(CORES,), memops=MEMOPS
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def _executor(tmp_path):
    """Isolated executor: private cache dir so tests never cross-talk."""
    return Executor(workers=1, cache_dir=tmp_path / "cache", use_cache=True)


def _supervisor(**overrides):
    defaults = dict(
        workers=2,
        retry=RetryPolicy(max_attempts=3, unit=0.0),
        heartbeat_interval=0.05,
    )
    defaults.update(overrides)
    return WorkerSupervisor(**defaults)


def _todo(spec):
    campaign = Campaign("unused", spec)
    seen = {}
    for key, request in zip(campaign.keys, campaign.plan.requests):
        seen.setdefault(key, request)
    return [(key, request) for key, request in seen.items()]


# ----------------------------------------------------------------- ioutils


class TestIoutils:
    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "a" / "b.json"
        atomic_write_json(target, {"x": 1, "a": 2})
        assert json.loads(target.read_text()) == {"x": 1, "a": 2}
        assert list(iter_stale_tmp(tmp_path)) == []

    def test_atomic_write_is_canonical(self, tmp_path):
        one, two = tmp_path / "one.json", tmp_path / "two.json"
        atomic_write_json(one, {"b": 1, "a": [1, 2]})
        atomic_write_json(two, {"a": [1, 2], "b": 1})
        assert one.read_bytes() == two.read_bytes()

    def test_journal_round_trip(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        append_jsonl(journal, {"n": 1})
        append_jsonl(journal, {"n": 2})
        records, bad = read_jsonl(journal)
        assert [r["n"] for r in records] == [1, 2]
        assert bad == []

    def test_torn_final_line_dropped_silently(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        append_jsonl(journal, {"n": 1})
        with open(journal, "a") as handle:
            handle.write('{"n": 2, "torn')  # SIGKILL mid-append
        records, bad = read_jsonl(journal)
        assert [r["n"] for r in records] == [1]
        assert bad == []  # expected crash artifact, not corruption

    def test_mid_file_corruption_is_reported(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        append_jsonl(journal, {"n": 1})
        with open(journal, "a") as handle:
            handle.write("not json\n")
        append_jsonl(journal, {"n": 3})
        records, bad = read_jsonl(journal)
        assert [r["n"] for r in records] == [1, 3]
        assert bad == [2]

    def test_quarantine_moves_file_aside(self, tmp_path):
        victim = tmp_path / "bad.json"
        victim.write_text("garbage")
        moved = quarantine(victim)
        assert not victim.exists()
        assert moved.exists() and ".corrupt." in moved.name

    def test_missing_journal_reads_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "nope.jsonl") == ([], [])


# ----------------------------------------------------------- retry policy


class TestRetryPolicy:
    def test_schedule_is_seeded_and_reproducible(self):
        a = RetryPolicy(seed=7, unit=0.01)
        b = RetryPolicy(seed=7, unit=0.01)
        delays_a = [a.delay_seconds("k1", n) for n in range(1, 5)]
        delays_b = [b.delay_seconds("k1", n) for n in range(1, 5)]
        assert delays_a == delays_b

    def test_streams_are_independent_per_key(self):
        policy = RetryPolicy(seed=7, unit=0.01)
        # Drawing for k2 must not perturb k1's schedule.
        fresh = RetryPolicy(seed=7, unit=0.01)
        first = fresh.delay_seconds("k1", 1)
        policy.delay_seconds("k2", 1)
        assert policy.delay_seconds("k1", 1) == first

    def test_unit_zero_means_instant_retries(self):
        policy = RetryPolicy(seed=0, unit=0.0)
        assert policy.delay_seconds("k", 3) == 0.0

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


# --------------------------------------------------------- fault injection


class TestFaultInjection:
    def test_scripted_faults_match_prefix_and_attempt(self):
        faults = ScriptedFaults({("abc", 1): "crash"})
        assert faults("abcdef", 1) == "crash"
        assert faults("abcdef", 2) is None
        assert faults("zzz", 1) is None

    def test_scripted_faults_reject_unknown_kind(self):
        with pytest.raises(ValueError):
            ScriptedFaults({("k", 1): "meteor"})

    def test_seeded_faults_are_deterministic(self):
        a = SeededFaults({"crash": 0.5}, seed=3)
        b = SeededFaults({"crash": 0.5}, seed=3)
        draws = [(f"k{i}", 1) for i in range(32)]
        assert [a(*d) for d in draws] == [b(*d) for d in draws]

    def test_seeded_faults_heal_after_max_attempts(self):
        faults = SeededFaults({"crash": 1.0}, seed=0, max_faulty_attempts=2)
        assert faults("k", 1) == "crash"
        assert faults("k", 2) == "crash"
        assert faults("k", 3) is None

    def test_parse_cli_spec(self):
        faults = SeededFaults.parse("crash=0.2, hang=0.1", seed=5)
        assert faults.rates == {"crash": 0.2, "hang": 0.1}
        with pytest.raises(ValueError):
            SeededFaults.parse("meteor=1.0")


# -------------------------------------------------------------- supervisor


class TestSupervisor:
    def test_clean_batch_completes(self):
        todo = _todo(_spec())
        outcomes = _supervisor().run(todo)
        assert len(outcomes) == len(todo)
        assert all(o.ok and o.attempts == 1 for o in outcomes.values())
        assert all(o.payload["cycles"] > 0 for o in outcomes.values())

    def test_crash_is_retried_and_heals(self):
        todo = _todo(_spec())
        victim = todo[0][0]
        events = []
        outcomes = _supervisor(
            faults=ScriptedFaults({(victim, 1): "crash"}),
            on_event=events.append,
        ).run(todo)
        outcome = outcomes[victim]
        assert outcome.ok and outcome.attempts == 2
        assert [r.status for r in outcome.history] == ["crashed", "ok"]
        assert any(
            e["event"] == "retry" and e["status"] == "crashed" for e in events
        )

    def test_worker_error_is_retried(self):
        todo = _todo(_spec())
        victim = todo[-1][0]
        outcomes = _supervisor(
            faults=ScriptedFaults({(victim, 1): "error"})
        ).run(todo)
        assert outcomes[victim].ok and outcomes[victim].attempts == 2
        assert outcomes[victim].history[0].status == "error"

    def test_retry_exhaustion_reports_failed_without_raising(self):
        todo = _todo(_spec())
        victim = todo[0][0]
        outcomes = _supervisor(
            retry=RetryPolicy(max_attempts=2, unit=0.0),
            faults=ScriptedFaults({(victim, 1): "error", (victim, 2): "error"}),
        ).run(todo)
        failed = outcomes[victim]
        assert not failed.ok
        assert failed.attempts == 2
        assert "error" in failed.detail
        # The rest of the batch still completed.
        assert all(o.ok for k, o in outcomes.items() if k != victim)

    def test_hang_hits_wall_clock_timeout(self):
        todo = _todo(_spec())[:1]
        victim = todo[0][0]
        outcomes = _supervisor(
            timeout=0.4,
            faults=ScriptedFaults({(victim, 1): "hang"}),
        ).run(todo)
        assert outcomes[victim].ok  # healed on attempt 2
        assert outcomes[victim].history[0].status == "timeout"

    def test_stall_is_detected_via_missing_heartbeats(self):
        todo = _todo(_spec())[:1]
        victim = todo[0][0]
        outcomes = _supervisor(
            heartbeat_interval=0.05,
            heartbeat_grace=4.0,  # silent for 0.2s => hung
            faults=ScriptedFaults({(victim, 1): "stall"}),
        ).run(todo)
        assert outcomes[victim].ok
        assert outcomes[victim].history[0].status == "hung"

    def test_payloads_match_in_process_simulation(self):
        from repro.harness.executor import _simulate

        todo = _todo(_spec())
        outcomes = _supervisor().run(todo)
        for key, request in todo:
            expected, _ = _simulate(request)
            assert outcomes[key].payload == expected


# ----------------------------------------------------------------- campaign


class TestCampaignSpec:
    def test_round_trips_through_dict(self):
        spec = _spec(kind="thresholds", thresholds=(2, 4))
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_kind_and_empty_apps(self):
        with pytest.raises(ValueError):
            _spec(kind="meteor")
        with pytest.raises(ValueError):
            _spec(apps=())

    def test_build_is_deterministic(self):
        plan_a, labels_a = _spec().build()
        plan_b, labels_b = _spec().build()
        assert labels_a == labels_b
        assert [run_key(r) for r in plan_a.requests] == [
            run_key(r) for r in plan_b.requests
        ]

    def test_thresholds_kind_builds_baseline_plus_ladder(self):
        _, labels = _spec(kind="thresholds", thresholds=(2, 3)).build()
        assert labels == [
            f"{APP}/baseline/{CORES}c",
            f"{APP}/widir/{CORES}c/t2",
            f"{APP}/widir/{CORES}c/t3",
        ]


class TestCampaignLifecycle:
    def test_run_writes_all_artifacts(self, tmp_path):
        directory = tmp_path / "camp"
        report = run_campaign(
            directory, _spec(), supervisor=_supervisor(),
            executor=_executor(tmp_path),
        )
        assert report.ok and report.completed == report.total == 2
        for name in (
            "campaign.json", "journal.jsonl", "results.json",
            "digest.txt", "provenance.json",
        ):
            assert (directory / name).exists(), name
        results = json.loads((directory / "results.json").read_text())
        assert sorted(results["results"]) == sorted(
            [f"{APP}/baseline/{CORES}c", f"{APP}/widir/{CORES}c/t3"]
        )
        provenance = json.loads((directory / "provenance.json").read_text())
        assert provenance["partial"] is False
        assert provenance["missing"] == []
        assert list(iter_stale_tmp(directory)) == []

    def test_rerun_is_pure_resume(self, tmp_path):
        directory = tmp_path / "camp"
        first = run_campaign(
            directory, _spec(), supervisor=_supervisor(),
            executor=_executor(tmp_path),
        )
        blob = (directory / "results.json").read_bytes()
        second = run_campaign(
            directory, _spec(), supervisor=_supervisor(),
            executor=Executor(workers=1, use_cache=False),
        )
        assert second.resumed == second.total
        assert second.executed == 0
        assert second.digest == first.digest
        assert (directory / "results.json").read_bytes() == blob

    def test_create_twice_requires_resume(self, tmp_path):
        directory = tmp_path / "camp"
        Campaign.create(directory, _spec())
        with pytest.raises(CampaignError):
            Campaign.create(directory, _spec())
        with pytest.raises(CampaignError):
            run_campaign(directory, _spec(), resume=False)

    def test_spec_mismatch_is_rejected(self, tmp_path):
        directory = tmp_path / "camp"
        Campaign.create(directory, _spec())
        with pytest.raises(CampaignError):
            run_campaign(directory, _spec(memops=999))

    def test_load_rejects_non_campaign_dirs(self, tmp_path):
        with pytest.raises(CampaignError):
            Campaign.load(tmp_path)
        (tmp_path / "campaign.json").write_text("{corrupt")
        with pytest.raises(CampaignError):
            Campaign.load(tmp_path)

    def test_load_rejects_schema_drift(self, tmp_path):
        directory = tmp_path / "camp"
        Campaign.create(directory, _spec())
        manifest = json.loads((directory / "campaign.json").read_text())
        manifest["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        (directory / "campaign.json").write_text(json.dumps(manifest))
        with pytest.raises(CampaignError):
            Campaign.load(directory)


class TestResumeIdentity:
    """The headline invariant: interrupted+resumed == uninterrupted, in bytes."""

    def test_crash_retries_do_not_change_the_digest(self, tmp_path):
        clean_dir, faulty_dir = tmp_path / "clean", tmp_path / "faulty"
        clean = run_campaign(
            clean_dir, _spec(), supervisor=_supervisor(),
            executor=Executor(workers=1, use_cache=False),
        )
        script = {(key, 1): "crash" for key, _ in _todo(_spec())}
        faulty = run_campaign(
            faulty_dir, _spec(),
            supervisor=_supervisor(faults=ScriptedFaults(script)),
            executor=Executor(workers=1, use_cache=False),
        )
        assert faulty.retries == len(script)
        assert (faulty_dir / "results.json").read_bytes() == (
            clean_dir / "results.json"
        ).read_bytes()
        assert (faulty_dir / "digest.txt").read_bytes() == (
            clean_dir / "digest.txt"
        ).read_bytes()

    def test_journal_replay_survives_torn_final_line(self, tmp_path):
        directory = tmp_path / "camp"
        run_campaign(
            directory, _spec(), supervisor=_supervisor(),
            executor=Executor(workers=1, use_cache=False),
        )
        digest = (directory / "digest.txt").read_bytes()
        with open(directory / "journal.jsonl", "a") as handle:
            handle.write('{"type": "run", "torn')  # simulated SIGKILL
        campaign = Campaign.load(directory)
        status = campaign.status()
        assert status.done and status.journal_bad_lines == []
        report = campaign.run(
            supervisor=_supervisor(),
            executor=Executor(workers=1, use_cache=False),
        )
        assert report.resumed == report.total
        assert (directory / "digest.txt").read_bytes() == digest

    def test_missing_payload_is_demoted_and_rerun(self, tmp_path):
        directory = tmp_path / "camp"
        run_campaign(
            directory, _spec(), supervisor=_supervisor(),
            executor=Executor(workers=1, use_cache=False),
        )
        digest = (directory / "digest.txt").read_bytes()
        campaign = Campaign.load(directory)
        victim = campaign.keys[0]
        (directory / "runs" / f"{victim}.json").unlink()
        assert victim not in campaign.completed_payloads()
        report = campaign.run(
            supervisor=_supervisor(),
            executor=Executor(workers=1, use_cache=False),
        )
        assert report.executed == 1
        assert (directory / "digest.txt").read_bytes() == digest

    def test_corrupt_payload_is_quarantined_and_rerun(self, tmp_path):
        directory = tmp_path / "camp"
        run_campaign(
            directory, _spec(), supervisor=_supervisor(),
            executor=Executor(workers=1, use_cache=False),
        )
        digest = (directory / "digest.txt").read_bytes()
        campaign = Campaign.load(directory)
        victim = directory / "runs" / f"{campaign.keys[0]}.json"
        victim.write_text("{torn json")
        report = campaign.run(
            supervisor=_supervisor(),
            executor=Executor(workers=1, use_cache=False),
        )
        assert report.executed == 1
        assert (directory / "digest.txt").read_bytes() == digest
        assert list(directory.glob("runs/*.corrupt.*"))

    def test_cache_hits_count_as_completions(self, tmp_path):
        executor = _executor(tmp_path)
        warm_dir, campaign_dir = tmp_path / "warm", tmp_path / "camp"
        run_campaign(
            warm_dir, _spec(), supervisor=_supervisor(), executor=executor
        )
        report = run_campaign(
            campaign_dir, _spec(), supervisor=_supervisor(), executor=executor
        )
        assert report.cache_hits == report.total
        assert report.executed == 0
        assert (campaign_dir / "digest.txt").read_bytes() == (
            warm_dir / "digest.txt"
        ).read_bytes()


class TestGracefulDegradation:
    def _degraded(self, tmp_path):
        directory = tmp_path / "camp"
        campaign = Campaign.create(directory, _spec())
        victim = campaign.key_for_label[f"{APP}/widir/{CORES}c/t3"]
        script = {(victim, n): "error" for n in (1, 2)}
        report = campaign.run(
            supervisor=_supervisor(
                retry=RetryPolicy(max_attempts=2, unit=0.0),
                faults=ScriptedFaults(script),
            ),
            executor=Executor(workers=1, use_cache=False),
        )
        return directory, campaign, report

    def test_failed_run_degrades_instead_of_aborting(self, tmp_path):
        directory, _, report = self._degraded(tmp_path)
        assert not report.ok
        assert report.completed == 1 and report.total == 2
        assert report.failed[0]["label"] == f"{APP}/widir/{CORES}c/t3"
        provenance = json.loads((directory / "provenance.json").read_text())
        assert provenance["partial"] is True
        assert [m["label"] for m in provenance["missing"]] == [
            f"{APP}/widir/{CORES}c/t3"
        ]
        assert provenance["missing"][0]["attempts"] == 2

    def test_status_surfaces_failures_and_retries(self, tmp_path):
        _, campaign, _ = self._degraded(tmp_path)
        status = campaign.status()
        assert not status.done
        assert [f["label"] for f in status.failed] == [
            f"{APP}/widir/{CORES}c/t3"
        ]
        assert status.retries_by_kind.get("error", 0) >= 1
        rendered = status.render()
        assert "degraded" in rendered and "campaign resume" in rendered

    def test_partial_figures_render_with_missing_note(self, tmp_path):
        _, campaign, _ = self._degraded(tmp_path)
        source = campaign.result_source()
        figure = figure6_mpki(
            apps=(APP,), num_cores=CORES, memops=MEMOPS, executor=source
        )
        assert figure.partial
        assert "PARTIAL" in figure.text

    def test_strict_result_source_raises(self, tmp_path):
        _, campaign, _ = self._degraded(tmp_path)
        plan, _ = campaign.spec.build()
        with pytest.raises(CampaignError):
            campaign.result_source(strict=True).map_runs(plan)

    def test_resume_heals_the_degraded_run(self, tmp_path):
        directory, campaign, _ = self._degraded(tmp_path)
        clean_dir = tmp_path / "clean"
        run_campaign(
            clean_dir, _spec(), supervisor=_supervisor(),
            executor=Executor(workers=1, use_cache=False),
        )
        report = campaign.run(
            supervisor=_supervisor(),  # fresh retry budget, no faults
            executor=Executor(workers=1, use_cache=False),
        )
        assert report.ok and report.completed == 2
        assert (directory / "results.json").read_bytes() == (
            clean_dir / "results.json"
        ).read_bytes()


class TestTelemetry:
    def test_counters_track_the_retry_ladder(self, tmp_path):
        telemetry = CampaignTelemetry()
        script = {(key, 1): "crash" for key, _ in _todo(_spec())}
        run_campaign(
            tmp_path / "camp", _spec(),
            supervisor=_supervisor(faults=ScriptedFaults(script)),
            executor=Executor(workers=1, use_cache=False),
            telemetry=telemetry,
        )
        counters = telemetry.snapshot()["counters"]
        assert counters["runs.total"] == 2
        assert counters["runs.completed"] == 2
        assert counters["retries.crashed"] == 2
        assert counters["attempts.launched"] == 4

    def test_chrome_trace_export(self, tmp_path):
        telemetry = CampaignTelemetry()
        run_campaign(
            tmp_path / "camp", _spec(), supervisor=_supervisor(),
            executor=Executor(workers=1, use_cache=False),
            telemetry=telemetry,
        )
        out = tmp_path / "trace.json"
        telemetry.write_chrome_trace(out, workers=2)
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        assert any(e.get("ph") == "X" for e in events)
        assert any(e.get("ph") == "C" for e in events)


# ----------------------------------------------------- executor hardening


class TestExecutorCacheHardening:
    def _request(self):
        plan = ExperimentPlan()
        from repro.config.presets import widir_config

        plan.add(APP, widir_config(num_cores=CORES), MEMOPS)
        return plan

    def test_corrupt_cache_entry_is_quarantined_and_recomputed(self, tmp_path):
        executor = _executor(tmp_path)
        plan = self._request()
        first = executor.map_runs(plan)[0]
        key = run_key(plan.requests[0])
        path = executor._cache_path(key)
        path.write_text("{half a json")
        again = executor.map_runs(self._request())[0]
        assert again.to_dict() == first.to_dict()
        assert list(tmp_path.glob("cache/*.corrupt.*"))
        # The recomputed entry was re-stored atomically.
        assert json.loads(path.read_text()) == first.to_dict()

    def test_cache_writes_leave_no_tmp_files(self, tmp_path):
        executor = _executor(tmp_path)
        executor.map_runs(self._request())
        assert list(iter_stale_tmp(tmp_path / "cache")) == []

    def test_prune_cache_collects_quarantined_debris(self, tmp_path):
        executor = _executor(tmp_path)
        executor.map_runs(self._request())
        (tmp_path / "cache" / "x.json.corrupt.1").write_text("junk")
        (tmp_path / "cache" / "y.json.tmp.2").write_text("junk")
        assert executor.prune_cache() == 3
        assert list((tmp_path / "cache").iterdir()) == []


# --------------------------------------------------- kill/resume property


class TestKillResumeProperty:
    """SIGKILL the whole campaign process at seeded points; resume must
    converge to the uninterrupted digest, byte for byte."""

    SPEC_ARGS = [
        "campaign", "run",
        "--apps", "volrend,radiosity",
        "--cores", "8",
        "--memops", "400",
        "--workers", "2",
        "--no-cache",
        "--backoff-unit", "0",
        "--name", "killtest",
    ]

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return env

    def _run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            cwd=REPO_ROOT, env=self._env(),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            timeout=120,
        )

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        reference = tmp_path / "reference"
        proc = self._run_cli(*self.SPEC_ARGS, "--out", str(reference))
        assert proc.returncode == 0, proc.stdout
        want = (reference / "digest.txt").read_bytes()

        for round_index, kill_after in enumerate((0.3, 0.9)):
            directory = tmp_path / f"killed{round_index}"
            victim = subprocess.Popen(
                [sys.executable, "-m", "repro", *self.SPEC_ARGS,
                 "--out", str(directory)],
                cwd=REPO_ROOT, env=self._env(),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            time.sleep(kill_after)
            if victim.poll() is None:
                victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)

            resumed = self._run_cli("campaign", "resume", str(directory))
            assert resumed.returncode == 0, resumed.stdout
            got = (directory / "digest.txt").read_bytes()
            assert got == want, (
                f"kill at +{kill_after}s diverged:\n{resumed.stdout}"
            )
            # Crash-safe writers never leave torn temp files behind.
            assert list(iter_stale_tmp(directory)) == []

            status = self._run_cli("campaign", "status", str(directory))
            assert status.returncode == 0, status.stdout
            assert "[complete]" in status.stdout

    def test_distributed_sigkill_coordinator_and_worker_resumes(
        self, tmp_path
    ):
        """SIGKILL a worker (chaos drill) *and* the coordinator mid-flight;
        a distributed resume must merge the shard journals into the exact
        single-box digest."""
        reference = tmp_path / "reference"
        proc = self._run_cli(*self.SPEC_ARGS, "--out", str(reference))
        assert proc.returncode == 0, proc.stdout
        want = (reference / "digest.txt").read_bytes()

        directory = tmp_path / "distributed"
        serve_args = [
            "campaign", "serve",
            "--apps", "volrend,radiosity",
            "--cores", "8",
            "--memops", "400",
            "--workers", "2",
            "--no-cache",
            "--name", "killtest",
            "--chaos-kill-after", "1",  # coordinator SIGKILLs one worker
            "--out", str(directory),
        ]
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", *serve_args],
            cwd=REPO_ROOT, env=self._env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        time.sleep(1.4)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        # Distributed resume: no --apps means "load the existing manifest".
        resumed = self._run_cli(
            "campaign", "serve", "--out", str(directory),
            "--workers", "2", "--no-cache",
        )
        assert resumed.returncode == 0, resumed.stdout
        got = (directory / "digest.txt").read_bytes()
        assert got == want, f"distributed resume diverged:\n{resumed.stdout}"
        assert (directory / "results.json").read_bytes() == (
            reference / "results.json"
        ).read_bytes()
        assert list(iter_stale_tmp(directory)) == []
        # The merged run is also resumable by the *single-box* engine.
        status = self._run_cli("campaign", "status", str(directory))
        assert status.returncode == 0, status.stdout
        assert "[complete]" in status.stdout
