"""Unit tests for the wired MESI Dir_i_B protocol on small machines.

These exercise individual transitions end-to-end through the real
Manycore (caches, directory, mesh, memory), with direct access calls rather
than CPU cores, so each test pins down one protocol behaviour.
"""

import pytest

from repro.config import baseline_config
from repro.system import Manycore


ADDR = 0x0001_0000


def make_machine(cores=4):
    return Manycore(baseline_config(num_cores=cores))


def do_load(machine, core, address):
    out = []
    machine.caches[core].load(address, out.append)
    machine.run(max_events=1_000_000)
    return out[0]


def do_store(machine, core, address, value):
    done = []
    machine.caches[core].store(address, value, lambda: done.append(True))
    machine.run(max_events=1_000_000)
    assert done


def do_rmw(machine, core, address):
    out = []
    machine.caches[core].rmw(address, out.append)
    machine.run(max_events=1_000_000)
    return out[0]


def line_state(machine, core, address):
    entry = machine.caches[core].array.lookup(
        machine.amap.line_of(address), touch=False
    )
    return entry.state if entry else "I"


def dir_entry(machine, address):
    line = machine.amap.line_of(address)
    home = machine.amap.home_of(line)
    return machine.directories[home].array.lookup(line, touch=False)


class TestColdMisses:
    def test_first_read_grants_exclusive(self):
        machine = make_machine()
        assert do_load(machine, 0, ADDR) == 0
        assert line_state(machine, 0, ADDR) == "E"
        assert dir_entry(machine, ADDR).state == "E"
        machine.check_coherence()

    def test_first_write_grants_exclusive_then_modified(self):
        machine = make_machine()
        do_store(machine, 0, ADDR, 99)
        assert line_state(machine, 0, ADDR) == "M"
        assert do_load(machine, 0, ADDR) == 99
        machine.check_coherence()

    def test_memory_backs_uncached_lines(self):
        machine = make_machine()
        machine.memory.write_word(machine.amap.line_of(ADDR), 0, 1234)
        assert do_load(machine, 0, ADDR) == 1234


class TestReadSharing:
    def test_second_reader_downgrades_owner(self):
        machine = make_machine()
        do_store(machine, 0, ADDR, 7)
        assert do_load(machine, 1, ADDR) == 7
        assert line_state(machine, 0, ADDR) == "S"
        assert line_state(machine, 1, ADDR) == "S"
        entry = dir_entry(machine, ADDR)
        assert entry.state == "S"
        assert entry.sharers == {0, 1}
        machine.check_coherence()

    def test_many_readers_accumulate_in_sharer_set(self):
        machine = make_machine()
        for core in range(4):
            do_load(machine, core, ADDR)
        assert dir_entry(machine, ADDR).sharers == {0, 1, 2, 3}
        machine.check_coherence()

    def test_dirty_data_flows_through_forward(self):
        machine = make_machine()
        do_store(machine, 2, ADDR, 555)
        assert do_load(machine, 3, ADDR) == 555
        # The forward also freshened the LLC copy.
        assert dir_entry(machine, ADDR).data.get(0) == 555


class TestWriteInvalidation:
    def test_write_invalidates_all_sharers(self):
        machine = make_machine()
        for core in range(4):
            do_load(machine, core, ADDR)
        do_store(machine, 0, ADDR, 42)
        assert line_state(machine, 0, ADDR) == "M"
        for core in (1, 2, 3):
            assert line_state(machine, core, ADDR) == "I"
        machine.check_coherence()

    def test_upgrade_without_data_transfer(self):
        machine = make_machine()
        do_load(machine, 0, ADDR)
        do_load(machine, 1, ADDR)
        do_store(machine, 1, ADDR, 5)  # upgrade: GrantX path
        assert line_state(machine, 1, ADDR) == "M"
        assert line_state(machine, 0, ADDR) == "I"

    def test_write_miss_steals_from_owner(self):
        machine = make_machine()
        do_store(machine, 0, ADDR, 1)
        do_store(machine, 1, ADDR, 2)  # FwdGetX path
        assert line_state(machine, 0, ADDR) == "I"
        assert line_state(machine, 1, ADDR) == "M"
        assert do_load(machine, 1, ADDR) == 2

    def test_readers_after_write_see_new_value(self):
        machine = make_machine()
        for core in range(4):
            do_load(machine, core, ADDR)
        do_store(machine, 3, ADDR, 77)
        for core in range(4):
            assert do_load(machine, core, ADDR) == 77
        machine.check_coherence()


class TestBroadcastBit:
    def test_pointer_overflow_sets_broadcast(self):
        machine = make_machine(cores=8)
        for core in range(5):  # Dir_3_B: 3 pointers
            do_load(machine, core, ADDR)
        entry = dir_entry(machine, ADDR)
        assert entry.broadcast
        # A write must still invalidate everyone correctly.
        do_store(machine, 7, ADDR, 9)
        for core in range(5):
            assert line_state(machine, core, ADDR) == "I"
        assert not dir_entry(machine, ADDR).broadcast
        machine.check_coherence()


class TestEvictions:
    def test_clean_eviction_notifies_directory(self):
        machine = make_machine()
        do_load(machine, 0, ADDR)
        do_load(machine, 1, ADDR)
        victim = machine.caches[0].array.lookup(machine.amap.line_of(ADDR))
        machine.caches[0]._evict(victim)
        machine.run(max_events=100_000)
        assert dir_entry(machine, ADDR).sharers == {1}
        machine.check_coherence()

    def test_dirty_eviction_writes_back(self):
        machine = make_machine()
        do_store(machine, 0, ADDR, 31)
        victim = machine.caches[0].array.lookup(machine.amap.line_of(ADDR))
        machine.caches[0]._evict(victim)
        machine.run(max_events=100_000)
        entry = dir_entry(machine, ADDR)
        assert entry.state == "I"
        assert entry.data.get(0) == 31
        # Value survives for the next reader.
        assert do_load(machine, 2, ADDR) == 31

    def test_l1_capacity_evictions_preserve_values(self):
        """Walk far more lines than one L1 set holds; all values survive."""
        machine = make_machine()
        # L1: 512 sets, 2 ways. Lines with identical set index collide.
        addresses = [ADDR + i * 512 * 64 for i in range(6)]
        for i, address in enumerate(addresses):
            do_store(machine, 0, address, 1000 + i)
        for i, address in enumerate(addresses):
            assert do_load(machine, 0, address) == 1000 + i
        machine.check_coherence()


class TestAtomics:
    def test_rmw_returns_old_value(self):
        machine = make_machine()
        do_store(machine, 0, ADDR, 10)
        assert do_rmw(machine, 1, ADDR) == 10
        assert do_load(machine, 1, ADDR) == 11

    def test_sequential_rmws_count_correctly(self):
        machine = make_machine()
        for i in range(12):
            assert do_rmw(machine, i % 4, ADDR) == i
        assert do_load(machine, 0, ADDR) == 12
        machine.check_coherence()


class TestWordGranularity:
    def test_distinct_words_in_one_line_independent(self):
        machine = make_machine()
        do_store(machine, 0, ADDR, 1)
        do_store(machine, 0, ADDR + 8, 2)
        do_store(machine, 0, ADDR + 56, 8)
        assert do_load(machine, 1, ADDR) == 1
        assert do_load(machine, 1, ADDR + 8) == 2
        assert do_load(machine, 1, ADDR + 56) == 8

    def test_false_sharing_still_coherent(self):
        machine = make_machine()
        do_store(machine, 0, ADDR, 100)      # word 0
        do_store(machine, 1, ADDR + 8, 200)  # word 1, same line
        assert do_load(machine, 2, ADDR) == 100
        assert do_load(machine, 2, ADDR + 8) == 200
        machine.check_coherence()
