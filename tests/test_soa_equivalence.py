"""SoA ↔ object-array equivalence property tests.

The batched-kernel work mirrors the cache and directory metadata into
struct-of-arrays numpy planes (``repro.mem.soa``, ``repro.coherence
.dir_soa``). These tests drive the object arrays and the SoA planes with
*identical* randomized mutation sequences and assert the observable
behaviour matches step for step: lookup hits, LRU eviction victims,
pinned/busy skipping, sharer sets, states, and final residency censuses.
Any semantic drift between the two representations fails here before it
can corrupt a vectorized consumer.
"""

from hypothesis import given, settings, strategies as st

from repro.coherence.directory import DirectoryArray
from repro.coherence.dir_soa import DirectoryMetaSoA
from repro.coherence.states import (
    DIR_EXCLUSIVE,
    DIR_SHARED,
    DIR_WIRELESS,
    EXCLUSIVE,
    MODIFIED,
    SHARED,
    WIRELESS,
)
from repro.mem.cache_array import CacheArray
from repro.mem.soa import CacheMetaSoA

NUM_SETS = 4
ASSOC = 2
NUM_NODES = 2
#: Small line universe so sets collide and evictions actually happen.
LINES = list(range(24))
CACHE_STATES = [MODIFIED, EXCLUSIVE, SHARED, WIRELESS]

cache_ops = st.lists(
    st.one_of(
        st.tuples(st.just("lookup"), st.sampled_from(LINES), st.booleans()),
        st.tuples(st.just("insert"), st.sampled_from(LINES), st.sampled_from(CACHE_STATES)),
        st.tuples(st.just("remove"), st.sampled_from(LINES)),
        st.tuples(st.just("pin"), st.sampled_from(LINES)),
        st.tuples(st.just("unpin"), st.sampled_from(LINES)),
        st.tuples(st.just("set_state"), st.sampled_from(LINES), st.sampled_from(CACHE_STATES)),
        st.tuples(st.just("set_dirty"), st.sampled_from(LINES)),
        st.tuples(st.just("bump_update"), st.sampled_from(LINES)),
    ),
    min_size=1,
    max_size=120,
)


def _cache_census(obj: CacheArray):
    return sorted(
        (e.line, e.state, e.dirty, e.update_count, e.pinned) for e in obj.lines()
    )


def _soa_census(soa: CacheMetaSoA, node: int):
    rows = []
    for line in soa.resident_lines(node):
        v = soa.view(node, line)
        rows.append((v.line, v.state, v.dirty, v.update_count, v.pinned))
    return sorted(rows)


@settings(max_examples=60, deadline=None)
@given(ops=cache_ops, node=st.integers(0, NUM_NODES - 1))
def test_property_cache_soa_matches_object_array(ops, node):
    """Identical mutation sequences produce identical caches: every lookup
    outcome, eviction victim, and the final metadata census agree."""
    obj = CacheArray(NUM_SETS, ASSOC)
    soa = CacheMetaSoA(NUM_NODES, NUM_SETS, ASSOC)

    for op in ops:
        name, line = op[0], op[1]
        obj_entry = obj.lookup(line, touch=False)
        if name == "lookup":
            touch = op[2]
            hit_obj = obj.lookup(line, touch=touch) is not None
            hit_soa = soa.lookup(node, line, touch=touch) >= 0
            assert hit_obj == hit_soa
        elif name == "insert":
            state = op[2]
            if obj_entry is not None:
                continue  # both would raise "already resident"
            # Victim discipline: the SoA must name the same line the
            # object array's LRU-with-pins walk picks.
            if obj.needs_victim(line):
                try:
                    victim_obj = obj.victim_for(line)
                except Exception:
                    victim_obj = None
                try:
                    victim_soa = soa.victim_for(node, line)
                except Exception:
                    victim_soa = None
                assert soa.needs_victim(node, line)
                if victim_obj is None:
                    assert victim_soa is None
                    continue  # all ways pinned in both: skip the insert
                assert victim_soa == victim_obj.line
                obj.remove(victim_obj.line)
                soa.remove(node, victim_soa)
            else:
                assert not soa.needs_victim(node, line)
            obj.insert(line, state)
            soa.insert(node, line, state)
        elif name == "remove":
            if obj_entry is None:
                continue
            obj.remove(line)
            soa.remove(node, line)
        elif name == "pin":
            if obj_entry is None:
                continue
            obj_entry.pinned += 1
            view = soa.view(node, line)
            view.pinned = view.pinned + 1
        elif name == "unpin":
            if obj_entry is None or not obj_entry.pinned:
                continue
            obj_entry.pinned -= 1
            view = soa.view(node, line)
            view.pinned = view.pinned - 1
        elif name == "set_state":
            if obj_entry is None:
                continue
            obj_entry.state = op[2]
            soa.view(node, line).state = op[2]
        elif name == "set_dirty":
            if obj_entry is None:
                continue
            obj_entry.dirty = True
            soa.view(node, line).dirty = True
        elif name == "bump_update":
            if obj_entry is None:
                continue
            obj_entry.update_count += 1
            view = soa.view(node, line)
            view.update_count = view.update_count + 1

        assert len(obj) == sum(
            len(soa.resident_lines(n)) for n in range(NUM_NODES) if n == node
        )

    assert _cache_census(obj) == _soa_census(soa, node)
    # The untouched node stayed empty: SoA mutations are node-local.
    other = (node + 1) % NUM_NODES
    assert soa.resident_lines(other) == []


NUM_CORES = 70  # > 64 exercises the multi-word sharer masks
DIR_STATES = [DIR_SHARED, DIR_EXCLUSIVE, DIR_WIRELESS]

dir_ops = st.lists(
    st.one_of(
        st.tuples(st.just("lookup"), st.sampled_from(LINES), st.booleans()),
        st.tuples(st.just("insert"), st.sampled_from(LINES)),
        st.tuples(st.just("remove"), st.sampled_from(LINES)),
        st.tuples(st.just("busy"), st.sampled_from(LINES), st.booleans()),
        st.tuples(st.just("add_sharer"), st.sampled_from(LINES), st.integers(0, NUM_CORES - 1)),
        st.tuples(st.just("remove_sharer"), st.sampled_from(LINES), st.integers(0, NUM_CORES - 1)),
        st.tuples(st.just("clear_sharers"), st.sampled_from(LINES)),
        st.tuples(st.just("set_state"), st.sampled_from(LINES), st.sampled_from(DIR_STATES)),
        st.tuples(st.just("set_owner"), st.sampled_from(LINES), st.integers(0, NUM_CORES - 1)),
        st.tuples(st.just("bump_count"), st.sampled_from(LINES)),
    ),
    min_size=1,
    max_size=120,
)


def _dir_census(obj: DirectoryArray):
    return sorted(
        (
            e.line,
            e.state,
            e.owner,
            tuple(sorted(e.sharers)),
            e.sharer_count,
            e.busy,
        )
        for e in obj.entries()
    )


def _dir_soa_census(soa: DirectoryMetaSoA, node: int):
    rows = []
    for line in soa.resident_lines(node):
        v = soa.view(node, line)
        rows.append(
            (v.line, v.state, v.owner, tuple(sorted(v.sharers)), v.sharer_count, v.busy)
        )
    return sorted(rows)


@settings(max_examples=60, deadline=None)
@given(ops=dir_ops, node=st.integers(0, NUM_NODES - 1))
def test_property_directory_soa_matches_object_array(ops, node):
    """Sharer bitmasks, busy-pinned victim selection, and every metadata
    field behave exactly like the object directory under random drives."""
    obj = DirectoryArray(NUM_SETS, ASSOC)
    soa = DirectoryMetaSoA(NUM_NODES, NUM_SETS, ASSOC, NUM_CORES)

    for op in ops:
        name, line = op[0], op[1]
        obj_entry = obj.lookup(line, touch=False)
        if name == "lookup":
            touch = op[2]
            assert (obj.lookup(line, touch=touch) is not None) == (
                soa.lookup(node, line, touch=touch) >= 0
            )
        elif name == "insert":
            if obj_entry is not None:
                continue
            if obj.needs_victim(line):
                victim_obj = obj.victim_for(line)
                victim_soa = soa.victim_for(node, line)
                assert soa.needs_victim(node, line)
                if victim_obj is None:  # every way busy: both decline
                    assert victim_soa is None
                    continue
                assert victim_soa == victim_obj.line
                obj.remove(victim_obj.line)
                soa.remove(node, victim_soa)
            else:
                assert not soa.needs_victim(node, line)
            obj.insert(line)
            soa.insert(node, line)
        elif name == "remove":
            if obj_entry is None:
                continue
            obj.remove(line)
            soa.remove(node, line)
        elif name == "busy":
            if obj_entry is None:
                continue
            obj_entry.busy = op[2]
            soa.view(node, line).busy = op[2]
        elif name == "add_sharer":
            if obj_entry is None:
                continue
            obj_entry.sharers.add(op[2])
            soa.add_sharer(node, line, op[2])
            assert soa.is_sharer(node, line, op[2])
        elif name == "remove_sharer":
            if obj_entry is None:
                continue
            obj_entry.sharers.discard(op[2])
            soa.remove_sharer(node, line, op[2])
            assert not soa.is_sharer(node, line, op[2])
        elif name == "clear_sharers":
            if obj_entry is None:
                continue
            obj_entry.sharers.clear()
            soa.clear_sharers(node, line)
        elif name == "set_state":
            if obj_entry is None:
                continue
            obj_entry.state = op[2]
            soa.view(node, line).state = op[2]
        elif name == "set_owner":
            if obj_entry is None:
                continue
            obj_entry.owner = op[2]
            soa.view(node, line).owner = op[2]
        elif name == "bump_count":
            if obj_entry is None:
                continue
            obj_entry.sharer_count += 1
            view = soa.view(node, line)
            view.sharer_count = view.sharer_count + 1

        if obj_entry is not None and name in ("add_sharer", "remove_sharer"):
            assert soa.sharers_of(node, line) == obj_entry.sharers
            assert soa.num_sharers(node, line) == len(obj_entry.sharers)

    assert _dir_census(obj) == _dir_soa_census(soa, node)


def test_sharer_histogram_vectorized_popcount():
    """The bulk histogram agrees with per-line popcounts (and exercises
    masks above bit 63)."""
    soa = DirectoryMetaSoA(1, NUM_SETS, ASSOC, NUM_CORES)
    soa.insert(0, 1)
    for core in (0, 3, 63, 64, 69):
        soa.add_sharer(0, 1, core)
    soa.insert(0, 2)
    soa.add_sharer(0, 2, 7)
    soa.insert(0, 3)
    hist = soa.sharer_histogram()
    assert hist == {5: 1, 1: 1, 0: 1}
    assert soa.num_sharers(0, 1) == 5
    assert soa.sharers_of(0, 1) == {0, 3, 63, 64, 69}


def test_cache_state_census_matches_views():
    soa = CacheMetaSoA(2, NUM_SETS, ASSOC)
    soa.insert(0, 1, MODIFIED)
    soa.insert(0, 2, SHARED)
    soa.insert(1, 3, SHARED)
    soa.insert(1, 7, WIRELESS)
    assert soa.state_census() == {"M": 1, "S": 2, "W": 1}
    assert list(soa.occupancy_by_node()) == [2, 2]
