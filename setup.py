"""Legacy setup shim.

The primary build configuration lives in ``pyproject.toml``; this file exists
so that ``pip install -e . --no-use-pep517`` works on environments whose
setuptools lacks the ``wheel`` package (PEP 517 editable installs require it).
"""

from setuptools import setup

setup()
